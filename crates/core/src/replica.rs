//! The replica side of trustless read replication.
//!
//! A [`ReplicaSet`] holds an independent, in-memory copy of each shard it
//! serves, bootstrapped from a primary's epoch-stamped snapshot
//! ([`crate::sharded::ShardedSaeEngine::export_shard_snapshot`]) and caught
//! up by replaying WAL tails
//! ([`crate::sharded::ShardedSaeEngine::export_wal_tail`]) — the same
//! CRC-framed transaction format, applied with the same committed-prefix
//! discipline, as crash recovery uses.
//!
//! ## Trust model
//!
//! The replica does **not** trust what it syncs. Every frame is CRC-checked
//! by [`sae_storage::scan_log`]; a snapshot or tail must decode as exactly
//! the committed transactions it claims; and reopening the trusted entity
//! recomputes the XB-Tree's total XOR and compares it against the digest the
//! `Commit` record published — a corrupted or truncated transfer fails
//! installation instead of producing a servable-but-wrong copy. (A *lying
//! primary* can of course publish a self-consistent wrong digest — replicas
//! are as untrusted as primaries, which is the point: the end client's
//! `verify_slices` against the owner-published token is the only real
//! authority. The checks here exist so an honest replica never serves
//! garbage it would fail verification with.)
//!
//! ## Epoch discipline
//!
//! Installed state only moves forward: a snapshot below the currently
//! served epoch is refused, and a tail replays strictly epoch-by-epoch from
//! the served state. A failed tail application leaves the shard *unsynced*
//! (it refuses queries with a typed error) rather than half-applied.

use crate::durable::Durability;
use crate::sae::{SaeServiceProvider, TrustedEntity};
use crate::sharded::{ShardLayout, ShardSlice};
use parking_lot::RwLock;
use sae_crypto::HashAlgorithm;
use sae_storage::{
    scan_log, MemPager, PageId, PageStore, ShardMeta, SharedPageStore, StorageError, StorageResult,
    WalTx,
};
use sae_workload::RangeQuery;
use std::sync::Arc;

/// Magic prefix of a shard snapshot (version folded into the last byte).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SAESNAP1";

/// Byte length of the fixed snapshot header.
pub const SNAPSHOT_HEADER_LEN: usize = 24;

/// The fixed prefix of an exported shard snapshot: identity and epoch,
/// cross-checked against the requesting replica's own published parameters
/// before a single frame is replayed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// The shard the snapshot captures.
    pub shard: u32,
    /// The deployment's fixed record length.
    pub record_len: u32,
    /// The commit epoch the snapshot is stamped with.
    pub epoch: u64,
}

impl SnapshotHeader {
    /// Encodes the 24-byte header: magic, shard, record length, epoch, all
    /// little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.record_len.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out
    }

    /// Parses the header off the front of a snapshot, rejecting a short
    /// prefix or a foreign magic.
    pub fn parse(bytes: &[u8]) -> StorageResult<SnapshotHeader> {
        let Some(header) = bytes.get(..SNAPSHOT_HEADER_LEN) else {
            return Err(StorageError::Corrupted(format!(
                "snapshot shorter than its {SNAPSHOT_HEADER_LEN}-byte header"
            )));
        };
        if header.get(..8) != Some(&SNAPSHOT_MAGIC[..]) {
            return Err(StorageError::Corrupted(
                "snapshot does not start with the SAESNAP1 magic".into(),
            ));
        }
        let read_u32 = |at: usize| -> u32 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&header[at..at + 4]);
            u32::from_le_bytes(buf)
        };
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&header[16..24]);
        Ok(SnapshotHeader {
            shard: read_u32(8),
            record_len: read_u32(12),
            epoch: u64::from_le_bytes(buf),
        })
    }
}

/// One installed shard copy: both parties' trees over private in-memory
/// stores, plus the meta they were opened from.
struct ReplicaState {
    sp: SaeServiceProvider,
    te: TrustedEntity,
    sp_store: SharedPageStore,
    te_store: SharedPageStore,
    meta: ShardMeta,
}

/// One shard slot of a replica. `None` until a snapshot installs — and again
/// after a failed tail application, so a half-applied copy is never served.
struct ReplicaShard {
    slot: RwLock<Option<ReplicaState>>,
}

/// A verified read replica of (a subset of) a sharded deployment: installs
/// snapshots, replays WAL tails, and answers shard slices from its own copy.
/// See the module docs for the trust model.
pub struct ReplicaSet {
    layout: ShardLayout,
    alg: HashAlgorithm,
    record_len: usize,
    shards: Vec<ReplicaShard>,
}

/// Extends an in-memory store until `id` is a valid page — replayed images
/// may target pages past the current count, exactly as in crash recovery.
fn ensure_page(store: &dyn PageStore, id: PageId) -> StorageResult<()> {
    while store.page_count() <= id.0 {
        store.allocate()?;
    }
    Ok(())
}

/// Applies one committed transaction's page images and heap page-table
/// entries onto a replica's stores, with the same append-only cross-checks
/// recovery enforces.
fn apply_tx_images(
    sp_store: &dyn PageStore,
    te_store: &dyn PageStore,
    heap_pages: &mut Vec<PageId>,
    tx: &WalTx,
) -> StorageResult<()> {
    for (party, page_id, image) in &tx.pages {
        let store = match party {
            sae_storage::Party::Sp => sp_store,
            sae_storage::Party::Te => te_store,
        };
        ensure_page(store, *page_id)?;
        store.write(*page_id, image)?;
    }
    for (index, page_id) in &tx.heap_entries {
        let at = *index as usize;
        if at == heap_pages.len() {
            heap_pages.push(*page_id);
        } else {
            match heap_pages.get(at) {
                Some(got) if got == page_id => {}
                got => {
                    return Err(StorageError::Corrupted(format!(
                        "replicated tx places heap page {} at index {index} but the replica's \
                         page table has {:?} there",
                        page_id.0, got
                    )));
                }
            }
        }
    }
    Ok(())
}

impl ReplicaSet {
    /// An empty replica of a deployment with the published `layout`, hash
    /// algorithm and record length. Every shard starts unsynced.
    pub fn new(layout: ShardLayout, alg: HashAlgorithm, record_len: usize) -> ReplicaSet {
        let shards = (0..layout.shard_count())
            .map(|_| ReplicaShard {
                slot: RwLock::new(None),
            })
            .collect();
        ReplicaSet {
            layout,
            alg,
            record_len,
            shards,
        }
    }

    /// The published layout the replica mirrors.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// The deployment's fixed record length.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// The epoch shard `shard` currently serves, or `None` when unsynced.
    pub fn epoch(&self, shard: usize) -> Option<u64> {
        let s = self.shards.get(shard)?;
        s.slot.read().as_ref().map(|state| state.meta.epoch)
    }

    fn shard_slot(&self, shard: usize) -> StorageResult<&ReplicaShard> {
        self.shards.get(shard).ok_or_else(|| {
            StorageError::Corrupted(format!(
                "shard {shard} does not exist in a {}-shard layout",
                self.shards.len()
            ))
        })
    }

    /// Installs a full snapshot into shard `shard`, replacing whatever was
    /// served before. The new copy is built completely — every frame
    /// CRC-checked, the heap table cross-checked, the TE digest recomputed —
    /// before the serving slot is swapped, so a failed installation leaves
    /// the previous state (or the unsynced state) untouched. Refuses an
    /// epoch *regression* (a snapshot older than what is already served);
    /// re-installing the same epoch is idempotent. Returns the installed
    /// epoch.
    pub fn install_snapshot(&self, shard: usize, bytes: &[u8]) -> StorageResult<u64> {
        let slot = &self.shard_slot(shard)?.slot;
        let header = SnapshotHeader::parse(bytes)?;
        if header.shard != shard as u32 {
            return Err(StorageError::Corrupted(format!(
                "snapshot is for shard {} but was installed into shard {shard}",
                header.shard
            )));
        }
        if header.record_len != self.record_len as u32 {
            return Err(StorageError::Corrupted(format!(
                "snapshot record length {} disagrees with the published {}",
                header.record_len, self.record_len
            )));
        }
        let frames = bytes.get(SNAPSHOT_HEADER_LEN..).unwrap_or(&[]);
        let (seg, txs) = scan_log(frames);
        let Some(seg) = seg else {
            return Err(StorageError::Corrupted(
                "snapshot body does not open with a valid segment frame".into(),
            ));
        };
        if seg.base_epoch != header.epoch {
            return Err(StorageError::Corrupted(format!(
                "snapshot header claims epoch {} but its segment starts at {}",
                header.epoch, seg.base_epoch
            )));
        }
        let [tx] = txs.as_slice() else {
            return Err(StorageError::Corrupted(format!(
                "snapshot must carry exactly one committed transaction, found {} — truncated \
                 or corrupted in transit",
                txs.len()
            )));
        };
        if tx.epoch != header.epoch {
            return Err(StorageError::Corrupted(format!(
                "snapshot header claims epoch {} but its transaction commits epoch {}",
                header.epoch, tx.epoch
            )));
        }
        if tx.meta.upper != self.layout.range(shard).upper {
            return Err(StorageError::Corrupted(format!(
                "snapshot commits shard bound {} but the published layout says {}",
                tx.meta.upper,
                self.layout.range(shard).upper
            )));
        }
        // Pre-check the regression *before* the expensive build, and again
        // under the write lock before the swap (a sibling sync thread may
        // have installed something newer meanwhile).
        if let Some(current) = slot.read().as_ref().map(|s| s.meta.epoch) {
            if header.epoch < current {
                return Err(StorageError::Corrupted(format!(
                    "snapshot at epoch {} regresses below the served epoch {current}",
                    header.epoch
                )));
            }
        }
        let state = Self::build_state(self.alg, self.record_len, tx)?;
        let mut guard = slot.write();
        if let Some(current) = guard.as_ref().map(|s| s.meta.epoch) {
            if header.epoch < current {
                return Err(StorageError::Corrupted(format!(
                    "snapshot at epoch {} regresses below the served epoch {current}",
                    header.epoch
                )));
            }
        }
        *guard = Some(state);
        Ok(header.epoch)
    }

    /// Builds a complete serving state from a snapshot's single transaction:
    /// fresh in-memory stores, replayed images, reconstructed heap table,
    /// and both trees reopened — which is where the TE digest is verified.
    fn build_state(
        alg: HashAlgorithm,
        record_len: usize,
        tx: &WalTx,
    ) -> StorageResult<ReplicaState> {
        let sp_store: SharedPageStore = Arc::new(MemPager::new());
        let te_store: SharedPageStore = Arc::new(MemPager::new());
        let mut heap_pages: Vec<PageId> = Vec::new();
        apply_tx_images(sp_store.as_ref(), te_store.as_ref(), &mut heap_pages, tx)?;
        if heap_pages.len() as u64 != tx.meta.heap_page_count {
            return Err(StorageError::Corrupted(format!(
                "snapshot carries {} heap page-table entries but its meta claims {}",
                heap_pages.len(),
                tx.meta.heap_page_count
            )));
        }
        let sp = SaeServiceProvider::open(
            Arc::clone(&sp_store),
            record_len,
            tx.meta.heap_record_count,
            heap_pages,
            tx.meta.sp_index,
        )?;
        let te = TrustedEntity::open(
            Arc::clone(&te_store),
            tx.meta.te_tree,
            alg,
            Durability::digest_of(&tx.meta),
        )?;
        Ok(ReplicaState {
            sp,
            te,
            sp_store,
            te_store,
            meta: tx.meta.clone(),
        })
    }

    /// Replays a WAL tail onto shard `shard`'s installed copy, advancing it
    /// commit by commit. The tail must come from
    /// [`crate::sharded::ShardedSaeEngine::export_wal_tail`] (or be the
    /// equivalent committed-prefix encoding): commits at or below the served
    /// epoch are skipped as already applied, and the remainder must step by
    /// at most one epoch at a time from the served state. On *any* failure
    /// mid-application the shard is left unsynced — it refuses queries
    /// rather than serving a half-applied copy — and must be re-seeded by a
    /// snapshot. Returns the served epoch after application.
    pub fn apply_wal_tail(&self, shard: usize, bytes: &[u8]) -> StorageResult<u64> {
        let slot = &self.shard_slot(shard)?.slot;
        let (seg, txs) = scan_log(bytes);
        if seg.is_none() {
            return Err(StorageError::Corrupted(
                "wal tail does not open with a valid segment frame".into(),
            ));
        }
        let mut guard = slot.write();
        let Some(state) = guard.take() else {
            return Err(StorageError::Corrupted(
                "wal tail applied to an unsynced replica shard — install a snapshot first".into(),
            ));
        };
        let current = state.meta.epoch;
        // Validate the whole tail against the served epoch before touching
        // any page, so a non-applicable tail leaves the copy served as-is.
        let applicable: Vec<&WalTx> = txs.iter().filter(|tx| tx.epoch > current).collect();
        let mut last = current;
        let mut valid = Ok(());
        for tx in &applicable {
            if tx.epoch > last + 1 {
                valid = Err(StorageError::TailUnavailable {
                    base_epoch: tx.epoch,
                    from_epoch: last,
                });
                break;
            }
            if tx.meta.upper != state.meta.upper {
                valid = Err(StorageError::Corrupted(format!(
                    "wal tail commits shard bound {} but the replica serves bound {}",
                    tx.meta.upper, state.meta.upper
                )));
                break;
            }
            last = tx.epoch;
        }
        if let Err(e) = valid {
            *guard = Some(state);
            return Err(e);
        }
        if applicable.is_empty() {
            *guard = Some(state);
            return Ok(current);
        }
        // The serving SP already holds the exact heap page table the copy
        // was opened with; incoming entries extend it.
        let mut heap_pages: Vec<PageId> = state.sp.heap().pages().to_vec();
        // Destructure so the stores survive the tree handles being rebuilt.
        let ReplicaState {
            sp,
            te,
            sp_store,
            te_store,
            meta,
        } = state;
        drop(sp);
        drop(te);
        let rebuilt = (|| -> StorageResult<ReplicaState> {
            let mut new_meta = meta.clone();
            for tx in &applicable {
                apply_tx_images(sp_store.as_ref(), te_store.as_ref(), &mut heap_pages, tx)?;
                new_meta = tx.meta.clone();
            }
            if heap_pages.len() as u64 != new_meta.heap_page_count {
                return Err(StorageError::Corrupted(format!(
                    "replayed tail leaves {} heap pages but the final meta claims {}",
                    heap_pages.len(),
                    new_meta.heap_page_count
                )));
            }
            let sp = SaeServiceProvider::open(
                Arc::clone(&sp_store),
                self.record_len,
                new_meta.heap_record_count,
                heap_pages.clone(),
                new_meta.sp_index,
            )?;
            let te = TrustedEntity::open(
                Arc::clone(&te_store),
                new_meta.te_tree,
                self.alg,
                Durability::digest_of(&new_meta),
            )?;
            Ok(ReplicaState {
                sp,
                te,
                sp_store: Arc::clone(&sp_store),
                te_store: Arc::clone(&te_store),
                meta: new_meta,
            })
        })();
        match rebuilt {
            Ok(state) => {
                let epoch = state.meta.epoch;
                *guard = Some(state);
                Ok(epoch)
            }
            // The slot stays `None`: a half-applied copy is never served.
            Err(e) => Err(e),
        }
    }

    /// Answers shard `shard`'s clamped sub-query from the replica's copy:
    /// the records plus the replica TE's token, and the epoch the copy
    /// serves. `Ok(None)` when the shard is unsynced (a server maps that to
    /// a typed NOT_SYNCED refusal).
    pub fn replica_slice(
        &self,
        shard: usize,
        sub: &RangeQuery,
    ) -> StorageResult<Option<(ShardSlice, u64)>> {
        let slot = &self.shard_slot(shard)?.slot;
        let guard = slot.read();
        let Some(state) = guard.as_ref() else {
            return Ok(None);
        };
        let records = state.sp.query(sub)?;
        let vt = state.te.generate_vt(sub)?;
        Ok(Some((ShardSlice { shard, records, vt }, state.meta.epoch)))
    }
}

impl std::fmt::Debug for ReplicaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let epochs: Vec<Option<u64>> = (0..self.shards.len()).map(|i| self.epoch(i)).collect();
        f.debug_struct("ReplicaSet")
            .field("shards", &self.shards.len())
            .field("record_len", &self.record_len)
            .field("epochs", &epochs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedSaeEngine;
    use sae_crypto::HashAlgorithm;
    use sae_workload::{Dataset, DatasetSpec, KeyDistribution, Record, RecordKey};

    const DOMAIN: RecordKey = 50_000;
    const RECORD_SIZE: usize = 96;

    fn dataset(n: usize) -> Dataset {
        DatasetSpec {
            cardinality: n,
            distribution: KeyDistribution::Uniform { domain: DOMAIN },
            record_size: RECORD_SIZE,
            seed: 77,
        }
        .generate()
    }

    fn durable_engine(dir: &std::path::Path, shards: usize) -> ShardedSaeEngine {
        ShardedSaeEngine::create_dir(dir, &dataset(600), HashAlgorithm::Sha1, shards, None).unwrap()
    }

    fn replica_of(engine: &ShardedSaeEngine) -> ReplicaSet {
        ReplicaSet::new(
            engine.layout().clone(),
            engine.client().algorithm(),
            RECORD_SIZE,
        )
    }

    fn sync_all(engine: &ShardedSaeEngine, replica: &ReplicaSet) {
        for shard in 0..engine.shard_count() {
            let snap = engine.export_shard_snapshot(shard).unwrap();
            replica.install_snapshot(shard, &snap).unwrap();
        }
    }

    fn assert_slices_match(engine: &ShardedSaeEngine, replica: &ReplicaSet) {
        for shard in 0..engine.shard_count() {
            let sub = engine.layout().range(shard);
            let primary = engine.shard_slice(shard, &sub).unwrap();
            let (copy, epoch) = replica.replica_slice(shard, &sub).unwrap().unwrap();
            assert_eq!(copy.records, primary.records, "shard {shard}");
            assert_eq!(copy.vt, primary.vt, "shard {shard}");
            assert_eq!(epoch, engine.shard_epoch(shard), "shard {shard}");
        }
    }

    #[test]
    fn installed_snapshots_serve_identical_slices() {
        let dir = tempfile::tempdir().unwrap();
        let engine = durable_engine(dir.path(), 2);
        let replica = replica_of(&engine);
        assert_eq!(replica.epoch(0), None);
        assert!(replica
            .replica_slice(0, &engine.layout().range(0))
            .unwrap()
            .is_none());
        sync_all(&engine, &replica);
        assert_slices_match(&engine, &replica);
    }

    #[test]
    fn wal_tails_advance_a_stale_replica() {
        let dir = tempfile::tempdir().unwrap();
        let engine = durable_engine(dir.path(), 2);
        let replica = replica_of(&engine);
        sync_all(&engine, &replica);
        // Advance the primary; the replica is now stale.
        for i in 0..6u64 {
            let key = (i * 7_001 % DOMAIN as u64) as RecordKey;
            engine
                .insert(&Record::with_size(900_000 + i, key, RECORD_SIZE))
                .unwrap();
        }
        for shard in 0..engine.shard_count() {
            let from = replica.epoch(shard).unwrap();
            let tail = engine.export_wal_tail(shard, from).unwrap();
            let got = replica.apply_wal_tail(shard, &tail).unwrap();
            assert_eq!(got, engine.shard_epoch(shard), "shard {shard}");
            // Replaying the same tail is idempotent: everything is skipped.
            let again = replica.apply_wal_tail(shard, &tail).unwrap();
            assert_eq!(again, got, "shard {shard}");
        }
        assert_slices_match(&engine, &replica);
    }

    #[test]
    fn epoch_regressions_are_refused() {
        let dir = tempfile::tempdir().unwrap();
        let engine = durable_engine(dir.path(), 1);
        let stale = engine.export_shard_snapshot(0).unwrap();
        engine
            .insert(&Record::with_size(900_001, 123, RECORD_SIZE))
            .unwrap();
        let fresh = engine.export_shard_snapshot(0).unwrap();
        let replica = replica_of(&engine);
        let epoch = replica.install_snapshot(0, &fresh).unwrap();
        let err = replica.install_snapshot(0, &stale).unwrap_err();
        assert!(err.to_string().contains("regresses"), "{err}");
        assert_eq!(replica.epoch(0), Some(epoch));
        // Same-epoch reinstallation is idempotent, not a regression.
        assert_eq!(replica.install_snapshot(0, &fresh).unwrap(), epoch);
    }

    #[test]
    fn tails_with_an_epoch_gap_demand_a_snapshot() {
        let dir = tempfile::tempdir().unwrap();
        let engine = durable_engine(dir.path(), 1);
        let replica = replica_of(&engine);
        sync_all(&engine, &replica);
        let installed = replica.epoch(0).unwrap();
        for i in 0..3u64 {
            engine
                .insert(&Record::with_size(
                    910_000 + i,
                    (100 + i) as RecordKey,
                    RECORD_SIZE,
                ))
                .unwrap();
        }
        // A tail starting past the replica's epoch skips commits it never saw.
        let gapped = engine.export_wal_tail(0, installed + 1).unwrap();
        let err = replica.apply_wal_tail(0, &gapped).unwrap_err();
        assert!(matches!(err, StorageError::TailUnavailable { .. }), "{err}");
        // The refusal left the installed copy serving, untouched.
        assert_eq!(replica.epoch(0), Some(installed));
        let full = engine.export_wal_tail(0, installed).unwrap();
        replica.apply_wal_tail(0, &full).unwrap();
        assert_slices_match(&engine, &replica);
    }

    #[test]
    fn corrupted_snapshots_never_install() {
        let dir = tempfile::tempdir().unwrap();
        let engine = durable_engine(dir.path(), 1);
        let snap = engine.export_shard_snapshot(0).unwrap();
        let replica = replica_of(&engine);
        // Flip one byte somewhere in the framed body: either the CRC kills
        // the frame (transaction count changes) or the rebuilt TE digest
        // disagrees — both must refuse installation.
        let mut bad = snap.clone();
        let at = SNAPSHOT_HEADER_LEN + bad.len() / 2;
        bad[at] ^= 0x40;
        assert!(replica.install_snapshot(0, &bad).is_err());
        assert_eq!(replica.epoch(0), None);
        // Truncation mid-body loses the commit frame.
        let cut = &snap[..snap.len() - 9];
        assert!(replica.install_snapshot(0, cut).is_err());
        assert_eq!(replica.epoch(0), None);
        // Wrong-shard and wrong-record-length headers are refused outright.
        let err = replica.install_snapshot(1, &snap).unwrap_err();
        assert!(err.to_string().contains("does not exist"), "{err}");
        let other = ReplicaSet::new(engine.layout().clone(), HashAlgorithm::Sha1, 128);
        let err = other.install_snapshot(0, &snap).unwrap_err();
        assert!(err.to_string().contains("record length"), "{err}");
    }

    #[test]
    fn unsynced_shards_refuse_tails_and_queries() {
        let dir = tempfile::tempdir().unwrap();
        let engine = durable_engine(dir.path(), 1);
        let replica = replica_of(&engine);
        let tail = engine.export_wal_tail(0, engine.shard_epoch(0)).unwrap();
        let err = replica.apply_wal_tail(0, &tail).unwrap_err();
        assert!(err.to_string().contains("unsynced"), "{err}");
        assert!(replica
            .replica_slice(0, &engine.layout().range(0))
            .unwrap()
            .is_none());
    }

    #[test]
    fn snapshot_headers_round_trip_and_reject_noise() {
        let h = SnapshotHeader {
            shard: 3,
            record_len: 500,
            epoch: 42,
        };
        let bytes = h.encode();
        assert_eq!(bytes.len(), SNAPSHOT_HEADER_LEN);
        assert_eq!(SnapshotHeader::parse(&bytes).unwrap(), h);
        assert!(SnapshotHeader::parse(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(SnapshotHeader::parse(&bad).is_err());
    }

    #[test]
    fn a_failed_tail_leaves_the_shard_unsynced() {
        let dir = tempfile::tempdir().unwrap();
        let engine = durable_engine(dir.path(), 1);
        let replica = replica_of(&engine);
        sync_all(&engine, &replica);
        engine
            .insert(&Record::with_size(920_000, 4_321, RECORD_SIZE))
            .unwrap();
        let from = replica.epoch(0).unwrap();
        let tail = engine.export_wal_tail(0, from).unwrap();
        // Corrupt a page image late in the tail: validation (which only
        // reads epochs and bounds) passes, application rebuilds a TE whose
        // recomputed digest disagrees with the committed one.
        let (seg, txs) = scan_log(&tail);
        assert!(seg.is_some());
        assert_eq!(txs.len(), 1);
        let mut records = vec![sae_storage::WalRecord::Seg { base_epoch: from }];
        let tx = &txs[0];
        records.push(sae_storage::WalRecord::Begin { epoch: tx.epoch });
        for (party, page_id, image) in &tx.pages {
            let mut image = image.clone();
            image.as_mut_slice()[17] ^= 0x10;
            records.push(sae_storage::WalRecord::PageImage {
                party: *party,
                page_id: *page_id,
                image: Box::new(image),
            });
        }
        for (index, page_id) in &tx.heap_entries {
            records.push(sae_storage::WalRecord::HeapDirEntry {
                index: *index,
                page_id: *page_id,
            });
        }
        records.push(sae_storage::WalRecord::Commit {
            meta: tx.meta.clone(),
        });
        let poisoned = sae_storage::encode_records(&records);
        assert!(replica.apply_wal_tail(0, &poisoned).is_err());
        // Half-applied state must never serve: the slot is unsynced now.
        assert_eq!(replica.epoch(0), None);
        assert!(replica
            .replica_slice(0, &engine.layout().range(0))
            .unwrap()
            .is_none());
        // A fresh snapshot re-seeds it.
        let snap = engine.export_shard_snapshot(0).unwrap();
        replica.install_snapshot(0, &snap).unwrap();
        assert_slices_match(&engine, &replica);
    }
}
