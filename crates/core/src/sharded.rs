//! Key-range sharded SAE serving with verified scatter-gather queries.
//!
//! The single-pair [`SaeEngine`](crate::engine::SaeEngine) serializes every
//! data-owner update behind two global locks, so write-heavy mixes collapse
//! to single-writer throughput no matter how many client threads are added.
//! The SAE model partitions cleanly by key range — each shard is an
//! independent SP (heap + B⁺-Tree) plus TE (XB-Tree digest domain) — so
//! [`ShardedSaeEngine`] holds `N` such pairs, each behind its own lock pair:
//!
//! * **Routing.** A point insert or delete touches exactly the shard owning
//!   its key ([`ShardLayout::shard_of`]); writes to different shards run
//!   fully in parallel.
//! * **Scatter-gather.** A range query is clamped to every overlapping shard
//!   ([`ShardLayout::clamp`]), each shard answers its sub-range and its own
//!   TE emits a verification token for that sub-range, and the client
//!   stitches the slices back together.
//!
//! ## Sound stitching
//!
//! Per-shard verification alone is not enough: a malicious SP could silently
//! *omit an entire shard's slice* and every remaining slice would still
//! verify. The client therefore derives, from the published [`ShardLayout`],
//! exactly which shards a query must have answered, and
//! [`ShardedSaeEngine::verify_scatter`] rejects a response whose slice list
//! is not exactly that set in ascending shard order
//! ([`ShardedVerifyError::MissingShardSlice`] et al.). Within each slice the
//! ordinary [`SaeClient`] checks run against the *clamped* sub-query, so a
//! record smuggled across a shard boundary ([`TamperStrategy::ShardBoundarySwap`])
//! is caught twice over: its key is outside the receiving shard's clamped
//! range, and both affected tokens stop matching their slices' XOR folds.
//! Because shard ranges are disjoint and visited in ascending order, the
//! per-slice checks also imply global key order and global record-id
//! uniqueness across the stitched result.
//!
//! ## Consistency under concurrency
//!
//! Each slice is produced while holding that shard's SP read lock across its
//! TE read, so every slice is internally consistent and verifies against its
//! own token even while writers are active on other shards. A query spanning
//! several shards may observe shard `j` before and shard `k` after some
//! concurrent update — exactly the per-key-range consistency a range-sharded
//! deployment provides.

use crate::durable::{CommitCrashPoint, Durability, DurabilityPolicy, ShardStores};
use crate::engine::{
    serve_batch, serve_mix, serve_ops, QueryService, ServeOptions, ThroughputReport, UpdateService,
};
use crate::metrics::QueryMetrics;
use crate::sae::{
    insert_into_parties, SaeClient, SaeServiceProvider, SaeVerifyError, TeMode, TrustedEntity,
};
use crate::tamper::TamperStrategy;
use parking_lot::{RwLock, RwLockWriteGuard};
use sae_crypto::{Digest, HashAlgorithm, DIGEST_LEN};
use sae_storage::{
    CachedPager, CostModel, IoSnapshot, IoStats, MemPager, PageStore, SharedPageStore,
    StorageError, StorageResult,
};
use sae_workload::{Dataset, DatasetSpec, QueryMix, RangeQuery, Record, RecordKey};
use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An equal-width partition of the key domain `[0, domain]` into contiguous,
/// disjoint shard ranges. Published by the data owner alongside the schema,
/// so the client can derive which shards must answer a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    /// Inclusive upper key bound of each shard, ascending; the last entry is
    /// the domain bound.
    uppers: Vec<RecordKey>,
}

impl ShardLayout {
    /// Splits `[0, domain]` into `shards` equal-width ranges (shard `k`
    /// starts at `k * (domain + 1) / shards` — the boundary formula
    /// [`QueryMix::spanning`] straddles). `shards` is clamped to
    /// `[1, domain + 1]` so every shard owns at least one key.
    pub fn uniform(domain: RecordKey, shards: usize) -> ShardLayout {
        let span = domain as u64 + 1;
        let shards = (shards.max(1) as u64).min(span);
        let uppers = (1..=shards)
            .map(|k| (k * span / shards - 1) as RecordKey)
            .collect();
        ShardLayout { uppers }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.uppers.len()
    }

    /// The inclusive key domain bound the layout covers.
    pub fn domain(&self) -> RecordKey {
        // analyzer:allow(no-unwrap-in-lib, both layout constructors reject an empty shard list)
        *self.uppers.last().expect("layouts have at least one shard")
    }

    /// The shard owning `key`. Keys above the domain bound map to the last
    /// shard (they can only appear in fabricated records, which fail
    /// verification anyway).
    pub fn shard_of(&self, key: RecordKey) -> usize {
        self.uppers
            .partition_point(|&upper| upper < key)
            .min(self.uppers.len() - 1)
    }

    /// Reconstructs a layout from the per-shard upper bounds a manifest
    /// recorded. The bounds must be non-empty and strictly ascending.
    pub fn from_uppers(uppers: Vec<RecordKey>) -> StorageResult<ShardLayout> {
        if uppers.is_empty() {
            return Err(StorageError::Corrupted(
                "shard layout must have at least one shard".into(),
            ));
        }
        if !uppers.windows(2).all(|w| w[0] < w[1]) {
            return Err(StorageError::Corrupted(
                "shard layout bounds are not strictly ascending".into(),
            ));
        }
        Ok(ShardLayout { uppers })
    }

    /// The inclusive key range `[lower, upper]` of shard `i`.
    pub fn range(&self, i: usize) -> RangeQuery {
        let lower = if i == 0 { 0 } else { self.uppers[i - 1] + 1 };
        RangeQuery::new(lower, self.uppers[i])
    }

    /// The overlap of `q` with shard `i`, or `None` when they are disjoint.
    pub fn clamp(&self, i: usize, q: &RangeQuery) -> Option<RangeQuery> {
        let range = self.range(i);
        let lower = range.lower.max(q.lower);
        let upper = range.upper.min(q.upper);
        (lower <= upper).then(|| RangeQuery::new(lower, upper))
    }

    /// The ascending shard indices whose ranges overlap `q` — exactly the
    /// shards that must contribute a slice to the query's answer.
    pub fn overlapping(&self, q: &RangeQuery) -> Vec<usize> {
        (0..self.shard_count())
            .filter(|&i| self.clamp(i, q).is_some())
            .collect()
    }

    /// The ascending `(shard, clamped sub-query)` pairs for every shard whose
    /// range overlaps `q`: the filter and the clamp in one pass, so callers
    /// never re-clamp an index the filter already proved overlaps.
    pub fn overlapping_clamped(&self, q: &RangeQuery) -> Vec<(usize, RangeQuery)> {
        (0..self.shard_count())
            .filter_map(|i| self.clamp(i, q).map(|sub| (i, sub)))
            .collect()
    }
}

/// One shard's contribution to a scatter-gather answer: the records of the
/// clamped sub-query plus that shard's TE verification token.
#[derive(Clone, Debug)]
pub struct ShardSlice {
    /// Which shard produced the slice.
    pub shard: usize,
    /// The encoded result records of the clamped sub-query, in key order.
    pub records: Vec<Vec<u8>>,
    /// The shard TE's verification token over the clamped sub-query.
    pub vt: Digest,
}

/// Why the client rejected a stitched scatter-gather result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardedVerifyError {
    /// A shard that must answer the query contributed no slice — the
    /// dropped-shard completeness attack.
    MissingShardSlice {
        /// The shard whose slice is missing.
        shard: usize,
    },
    /// A slice arrived from a shard the query does not overlap.
    UnexpectedShardSlice {
        /// The offending shard index.
        shard: usize,
    },
    /// The responding shards match the expected set but the slices are
    /// duplicated or not in ascending shard order.
    SlicesOutOfOrder,
    /// A slice failed the ordinary per-shard SAE verification against its
    /// clamped sub-query and shard token.
    Slice {
        /// The shard whose slice failed.
        shard: usize,
        /// The per-slice verification error.
        error: SaeVerifyError,
    },
}

impl std::fmt::Display for ShardedVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedVerifyError::MissingShardSlice { shard } => {
                write!(f, "shard {shard} must answer the query but sent no slice")
            }
            ShardedVerifyError::UnexpectedShardSlice { shard } => {
                write!(
                    f,
                    "shard {shard} sent a slice but does not overlap the query"
                )
            }
            ShardedVerifyError::SlicesOutOfOrder => {
                write!(f, "shard slices duplicated or not in ascending shard order")
            }
            ShardedVerifyError::Slice { shard, error } => {
                write!(f, "slice of shard {shard} failed verification: {error}")
            }
        }
    }
}

impl std::error::Error for ShardedVerifyError {}

/// The sound-stitching check of a scatter-gather response, as a free
/// function of *published* data only — the shard layout, the deployment
/// parameters inside [`SaeClient`], the query and the claimed slices.
/// [`ShardedSaeEngine`] runs it in-process and `sae-net`'s `NetClient` runs
/// the very same code across a wire, so a networked deployment cannot weaken
/// the verification story by construction.
///
/// The client derives, from the layout, exactly which shards must have
/// answered: anything less (a dropped slice), more, duplicated or reordered
/// is rejected before any cryptography runs. Each surviving slice then runs
/// the full per-shard [`SaeClient`] check against its *clamped* sub-query
/// and its shard's token; disjoint ascending ranges make those checks imply
/// global key order and cross-shard record-id uniqueness.
pub fn verify_slices(
    layout: &ShardLayout,
    client: &SaeClient,
    q: &RangeQuery,
    slices: &[ShardSlice],
) -> Result<(), ShardedVerifyError> {
    let expected = layout.overlapping_clamped(q);
    let exact = slices.len() == expected.len()
        && slices
            .iter()
            .zip(&expected)
            .all(|(slice, (shard, _))| slice.shard == *shard);
    if !exact {
        for (shard, _) in &expected {
            if !slices.iter().any(|s| s.shard == *shard) {
                return Err(ShardedVerifyError::MissingShardSlice { shard: *shard });
            }
        }
        if let Some(slice) = slices
            .iter()
            .find(|s| !expected.iter().any(|(shard, _)| *shard == s.shard))
        {
            return Err(ShardedVerifyError::UnexpectedShardSlice { shard: slice.shard });
        }
        return Err(ShardedVerifyError::SlicesOutOfOrder);
    }

    // The exactness check above proved `slices` and `expected` align
    // pairwise, so each slice verifies against its own clamped range.
    for (slice, (_, sub)) in slices.iter().zip(&expected) {
        let (outcome, _) = client.verify_detailed(sub, &slice.records, &slice.vt);
        if let Err(error) = outcome {
            return Err(ShardedVerifyError::Slice {
                shard: slice.shard,
                error,
            });
        }
    }
    Ok(())
}

/// Everything a sharded query run produces.
#[derive(Clone, Debug)]
pub struct ShardedQueryOutcome {
    /// The (possibly tampered) per-shard slices, in response order.
    pub slices: Vec<ShardSlice>,
    /// The client's stitched verification verdict.
    pub verdict: Result<(), ShardedVerifyError>,
    /// Cost accounting for the query.
    pub metrics: QueryMetrics,
}

/// One key-range shard: an independent SP/TE pair behind its own lock pair.
struct SaeShard {
    sp: RwLock<SaeServiceProvider>,
    te: RwLock<TrustedEntity>,
    sp_stats: Arc<IoStats>,
    te_stats: Arc<IoStats>,
    sp_cache: Option<Arc<CachedPager>>,
}

/// The SAE deployment split into `N` key-range shards, each an independent
/// SP/TE pair behind its own `RwLock` pair (lock order within a shard is SP
/// before TE, and a query visits shards in ascending index order, so there
/// are no lock cycles). See the module docs for the verification story.
pub struct ShardedSaeEngine {
    layout: ShardLayout,
    shards: Vec<SaeShard>,
    client: SaeClient,
    cost_model: CostModel,
    record_len: usize,
    /// Every record id present anywhere in the deployment. Each shard's SP
    /// only knows its own directory, so without this the data owner could
    /// insert the same id under keys owned by different shards — something
    /// the single-pair engine rejects. The lock is held only for the map
    /// probe, never across shard work or the write I/O hold.
    ids: RwLock<HashSet<u64>>,
    /// The durable backing when the engine was created with
    /// [`ShardedSaeEngine::create_dir`] / reopened with
    /// [`ShardedSaeEngine::open_dir`]; `None` for in-memory engines.
    durability: Option<Durability>,
}

impl ShardedSaeEngine {
    /// Builds a sharded in-memory deployment over `dataset` with an
    /// equal-width `shards`-way layout on the dataset's key domain.
    pub fn build_in_memory(
        dataset: &Dataset,
        alg: HashAlgorithm,
        shards: usize,
    ) -> StorageResult<ShardedSaeEngine> {
        Self::build(dataset, alg, shards, None)
    }

    /// Like [`ShardedSaeEngine::build_in_memory`], but wiring a
    /// [`CachedPager`] of `cache_pages` pages under *each shard's* SP and TE
    /// so hot index pages are served from the buffer pool.
    pub fn build_cached(
        dataset: &Dataset,
        alg: HashAlgorithm,
        shards: usize,
        cache_pages: usize,
    ) -> StorageResult<ShardedSaeEngine> {
        Self::build(dataset, alg, shards, Some(cache_pages))
    }

    fn build(
        dataset: &Dataset,
        alg: HashAlgorithm,
        shards: usize,
        cache_pages: Option<usize>,
    ) -> StorageResult<ShardedSaeEngine> {
        let layout = ShardLayout::uniform(dataset.spec.distribution.domain(), shards);
        let stores = (0..layout.shard_count())
            .map(|_| {
                let (sp_store, sp_cache): (SharedPageStore, _) = match cache_pages {
                    Some(pages) => {
                        let cache = Arc::new(CachedPager::new(MemPager::new_shared(), pages));
                        (Arc::clone(&cache) as SharedPageStore, Some(cache))
                    }
                    None => (MemPager::new_shared(), None),
                };
                let te_store: SharedPageStore = match cache_pages {
                    Some(pages) => Arc::new(CachedPager::new(MemPager::new_shared(), pages)),
                    None => MemPager::new_shared(),
                };
                ShardStores {
                    sp_store,
                    sp_cache,
                    te_store,
                }
            })
            .collect();
        Self::build_on_stores(dataset, alg, layout, stores, None)
    }

    /// Partitions `dataset` by the layout and bulk-loads one SP/TE pair per
    /// shard onto the supplied stores — shared by the in-memory and durable
    /// creation paths so the shard construction cannot drift between them.
    fn build_on_stores(
        dataset: &Dataset,
        alg: HashAlgorithm,
        layout: ShardLayout,
        stores: Vec<ShardStores>,
        durability: Option<Durability>,
    ) -> StorageResult<ShardedSaeEngine> {
        let mut partitions: Vec<Vec<Record>> = vec![Vec::new(); layout.shard_count()];
        for record in dataset.iter() {
            partitions[layout.shard_of(record.key)].push(record.clone());
        }

        let mut built = Vec::with_capacity(partitions.len());
        for (records, stores) in partitions.into_iter().zip(stores) {
            let sub = Dataset {
                spec: DatasetSpec {
                    cardinality: records.len(),
                    ..dataset.spec
                },
                records,
            };
            let sp = SaeServiceProvider::build(stores.sp_store, &sub)?;
            let te = TrustedEntity::build(stores.te_store, &sub, alg, TeMode::XbTree)?;
            let sp_stats = sp.store().stats();
            let te_stats = te.store().stats();
            built.push(SaeShard {
                sp: RwLock::new(sp),
                te: RwLock::new(te),
                sp_stats,
                te_stats,
                sp_cache: stores.sp_cache,
            });
        }
        Ok(ShardedSaeEngine {
            layout,
            shards: built,
            client: SaeClient::with_record_len(alg, dataset.spec.record_size),
            cost_model: CostModel::paper(),
            record_len: dataset.spec.record_size,
            ids: RwLock::new(dataset.iter().map(|r| r.id).collect()),
            durability,
        })
    }

    /// Creates a *durable* sharded deployment in `dir`: every shard gets its
    /// own `sp-<i>.pages` / `te-<i>.pages` pager-file pair (each optionally
    /// behind a write-back [`CachedPager`] of `cache_pages` pages) and a
    /// single `MANIFEST` records the layout, committed tree roots and
    /// published TE digests. Every accepted data-owner update is flushed and
    /// synced in commit order — pages before manifest — so the deployment
    /// survives a restart via [`ShardedSaeEngine::open_dir`]. Commits run
    /// under [`DurabilityPolicy::Immediate`]; use
    /// [`ShardedSaeEngine::create_dir_with`] to pick a policy.
    pub fn create_dir(
        dir: &Path,
        dataset: &Dataset,
        alg: HashAlgorithm,
        shards: usize,
        cache_pages: Option<usize>,
    ) -> StorageResult<ShardedSaeEngine> {
        Self::create_dir_with(
            dir,
            dataset,
            alg,
            shards,
            cache_pages,
            DurabilityPolicy::Immediate,
        )
    }

    /// Like [`ShardedSaeEngine::create_dir`], with an explicit
    /// [`DurabilityPolicy`] governing *when* accepted writes are committed:
    /// per-update (`Immediate`), batched behind an elected leader (`Group` —
    /// one fsync set per batch instead of per write), or only at
    /// `flush()`/`close()` (`FlushOnClose`). The policy is a runtime knob,
    /// not persisted: a deployment may be created under one policy and
    /// reopened under another.
    pub fn create_dir_with(
        dir: &Path,
        dataset: &Dataset,
        alg: HashAlgorithm,
        shards: usize,
        cache_pages: Option<usize>,
        policy: DurabilityPolicy,
    ) -> StorageResult<ShardedSaeEngine> {
        let layout = ShardLayout::uniform(dataset.spec.distribution.domain(), shards);
        let durability = Durability::create(
            dir,
            &layout.uppers,
            dataset.spec.record_size,
            cache_pages,
            policy,
        )?;
        let stores = (0..layout.shard_count())
            .map(|i| durability.stores(i))
            .collect();
        let engine = Self::build_on_stores(dataset, alg, layout, stores, Some(durability))?;
        engine.flush()?;
        Ok(engine)
    }

    /// Reopens a deployment created by [`ShardedSaeEngine::create_dir`] from
    /// its committed roots — no shard is rebuilt from the dataset. The
    /// manifest, every pager file's identity header and commit epoch, each
    /// heap's recovered page table and each TE's published digest are all
    /// validated; torn or garbage manifests, swapped shard files and
    /// pages-synced-but-manifest-not crashes
    /// ([`StorageError::StaleManifest`]) surface as typed errors, never as a
    /// panic or a silently-empty deployment.
    pub fn open_dir(
        dir: &Path,
        alg: HashAlgorithm,
        cache_pages: Option<usize>,
    ) -> StorageResult<ShardedSaeEngine> {
        Self::open_dir_with(dir, alg, cache_pages, DurabilityPolicy::Immediate)
    }

    /// Like [`ShardedSaeEngine::open_dir`], with an explicit
    /// [`DurabilityPolicy`] for the reopened deployment's future commits.
    pub fn open_dir_with(
        dir: &Path,
        alg: HashAlgorithm,
        cache_pages: Option<usize>,
        policy: DurabilityPolicy,
    ) -> StorageResult<ShardedSaeEngine> {
        let (durability, recovered) = Durability::open(dir, cache_pages, policy)?;
        let record_len = durability.record_size();
        let layout = ShardLayout::from_uppers(recovered.iter().map(|s| s.meta.upper).collect())?;
        let mut shards = Vec::with_capacity(recovered.len());
        let mut ids: HashSet<u64> = HashSet::new();
        for (i, shard) in recovered.into_iter().enumerate() {
            let stores = durability.stores(i);
            let sp = SaeServiceProvider::open(
                stores.sp_store,
                record_len,
                shard.meta.heap_record_count,
                shard.heap_pages,
                shard.meta.sp_index,
            )?;
            let te = TrustedEntity::open(
                stores.te_store,
                shard.meta.te_tree,
                alg,
                Durability::digest_of(&shard.meta),
            )?;
            for id in sp.record_ids() {
                if !ids.insert(id) {
                    return Err(StorageError::Corrupted(format!(
                        "record id {id} recovered from two different shards"
                    )));
                }
            }
            let sp_stats = sp.store().stats();
            let te_stats = te.store().stats();
            shards.push(SaeShard {
                sp: RwLock::new(sp),
                te: RwLock::new(te),
                sp_stats,
                te_stats,
                sp_cache: stores.sp_cache,
            });
        }
        Ok(ShardedSaeEngine {
            layout,
            shards,
            client: SaeClient::with_record_len(alg, record_len),
            cost_model: CostModel::paper(),
            record_len,
            ids: RwLock::new(ids),
            durability: Some(durability),
        })
    }

    /// Whether this engine is backed by durable files.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durability policy of a durable engine; `None` when in-memory.
    pub fn durability_policy(&self) -> Option<DurabilityPolicy> {
        self.durability.as_ref().map(|d| d.policy())
    }

    /// Arms (or clears) a commit-pipeline fault-injection point on the
    /// durable backing — the next commit fails after completing the named
    /// stage, simulating a kill between commit stages. For the
    /// crash-consistency tests; a no-op on in-memory engines.
    pub fn set_commit_crash_point(&self, point: Option<CommitCrashPoint>) {
        if let Some(d) = &self.durability {
            d.set_crash_point(point);
        }
    }

    /// Sets a simulated per-fsync latency on every shard's pager files,
    /// modelling slower production disks on fast CI storage (the E11
    /// experiment's knob; see `FilePager::set_sync_delay_micros`). A no-op
    /// on in-memory engines.
    pub fn set_simulated_sync_delay_micros(&self, micros: u64) {
        if let Some(d) = &self.durability {
            d.set_sync_delay_micros(micros);
        }
    }

    /// Overrides the write-ahead-log size past which a commit folds a
    /// checkpoint in (page flush + header/manifest republication + log
    /// truncation). Tests and benches force frequent — or suppress all —
    /// threshold checkpoints with it. A no-op on in-memory engines.
    pub fn set_checkpoint_threshold_bytes(&self, bytes: u64) {
        if let Some(d) = &self.durability {
            d.set_checkpoint_threshold_bytes(bytes);
        }
    }

    /// Commits every shard's current state to disk (no-op for in-memory
    /// engines). Each shard is committed under its read locks, so queries
    /// proceed concurrently while writers are briefly excluded.
    pub fn flush(&self) -> StorageResult<()> {
        if let Some(d) = &self.durability {
            for (i, shard) in self.shards.iter().enumerate() {
                let sp = shard.sp.read();
                let te = shard.te.read();
                // analyzer:allow(hold-across-sync, flush snapshots each shard under its read locks by design; see docs/invariants.md)
                d.commit_shard(i, &sp, &te)?;
            }
        }
        Ok(())
    }

    /// Commits every shard and tears the engine down, surfacing the flush
    /// and sync errors that `Drop` would have to swallow.
    pub fn close(self) -> StorageResult<()> {
        self.flush()
    }

    /// Claims `record`'s id in the deployment-wide directory (rejecting
    /// duplicates) and checks its key against the layout domain; on success
    /// the caller owns the claim and must release it if its shard write
    /// fails.
    fn claim(&self, record: &Record) -> StorageResult<()> {
        if record.key > self.layout.domain() {
            return Err(StorageError::KeyOutOfDomain {
                key: record.key,
                domain: self.layout.domain(),
            });
        }
        if !self.ids.write().insert(record.id) {
            return Err(StorageError::DuplicateRecordId(record.id));
        }
        Ok(())
    }

    /// The published shard layout.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Routes a data-owner insertion to the shard owning the record's key;
    /// only that shard's locks are taken (plus a momentary probe of the
    /// deployment-wide id directory), so writes to other shards proceed
    /// concurrently. Ids duplicated *anywhere* in the deployment and keys
    /// outside the layout domain (which no range query could ever reach) are
    /// rejected, exactly like the single-pair engine. A TE failure rolls the
    /// shard's SP insertion back.
    ///
    /// On a durable engine the accepted insert is committed per the
    /// deployment's [`DurabilityPolicy`] before returning: a ticketed
    /// write-ahead-log commit of its own under `Immediate`, a batched
    /// leader commit covering it under `Group`, or not at all under
    /// `FlushOnClose`. A *failed* commit leaves the in-memory insert
    /// standing while the error is reported — memory runs ahead of disk
    /// until the next successful commit (the mutation is not unwound;
    /// under `Group` other writers may already have built on it).
    pub fn insert(&self, record: &Record) -> StorageResult<()> {
        self.claim(record)?;
        let shard_idx = self.layout.shard_of(record.key);
        let shard = &self.shards[shard_idx];
        let mut sp = shard.sp.write();
        let mut te = shard.te.write();
        match insert_into_parties(&mut sp, &mut te, record) {
            Ok(()) => {
                let Some(d) = &self.durability else {
                    return Ok(());
                };
                match d.policy() {
                    DurabilityPolicy::FlushOnClose => Ok(()),
                    _ => self.group_commit_write(d, shard, shard_idx, sp, te),
                }
            }
            Err(e) => {
                self.ids.write().remove(&record.id);
                Err(e)
            }
        }
    }

    /// The ticketed write path shared by `insert`/`delete`/`apply_update`
    /// under `Immediate` *and* `Group`: a ticket is taken while the
    /// caller's write guards are still held (so the next commit is
    /// guaranteed to cover the mutation), the guards are released so the
    /// shard accepts further writes, and the call blocks until an elected
    /// leader's commit covers the ticket — appending the transaction to the
    /// write-ahead log under the read locks, then fsyncing the log with no
    /// tree locks held so the next batch queues up meanwhile. `Immediate`
    /// takes the same path but runs its own commit per writer — one log
    /// fsync per acknowledged write, with no batching.
    fn group_commit_write(
        &self,
        d: &Durability,
        shard: &SaeShard,
        shard_idx: usize,
        sp: RwLockWriteGuard<'_, SaeServiceProvider>,
        te: RwLockWriteGuard<'_, TrustedEntity>,
    ) -> StorageResult<()> {
        let ticket = d.announce(shard_idx);
        drop(te);
        drop(sp);
        d.wait_durable(shard_idx, ticket, || {
            let sp = shard.sp.read();
            let te = shard.te.read();
            // analyzer:allow(hold-across-sync, a threshold checkpoint flushes and syncs under the read locks by design — the cache flush must match the logged snapshot; the ack log fsync runs in finish_commit after the guards drop; see docs/invariants.md)
            let prepared = d.prepare_commit(shard_idx, &sp, &te, false)?;
            drop(te);
            drop(sp);
            d.finish_commit(prepared)
        })
    }

    /// Routes a data-owner deletion to the shard owning `key`; one-sided
    /// deletions are rolled back and reported as
    /// [`sae_storage::StorageError::Desync`]. Durable engines commit per the
    /// [`DurabilityPolicy`], exactly as [`ShardedSaeEngine::insert`] does
    /// (a failed commit leaves the in-memory deletion standing while the
    /// error is reported).
    pub fn delete(&self, id: u64, key: RecordKey) -> StorageResult<bool> {
        let shard_idx = self.layout.shard_of(key);
        let shard = &self.shards[shard_idx];
        let mut sp = shard.sp.write();
        let mut te = shard.te.write();
        let Some(_removed) = crate::sae::take_from_parties(&mut sp, &mut te, id, key)? else {
            return Ok(false);
        };
        let Some(d) = &self.durability else {
            self.ids.write().remove(&id);
            return Ok(true);
        };
        match d.policy() {
            DurabilityPolicy::FlushOnClose => {
                self.ids.write().remove(&id);
                Ok(true)
            }
            _ => {
                // The record is gone from memory either way; release its id
                // before the durability wait so concurrent writers see the
                // same state queries do.
                self.ids.write().remove(&id);
                self.group_commit_write(d, shard, shard_idx, sp, te)?;
                Ok(true)
            }
        }
    }

    /// Scatters `q` over every overlapping shard: each shard answers its
    /// clamped sub-query under its SP read lock held across its TE read, so
    /// every slice is internally consistent.
    pub fn scatter(&self, q: &RangeQuery) -> StorageResult<Vec<ShardSlice>> {
        self.layout
            .overlapping_clamped(q)
            .into_iter()
            .map(|(i, sub)| self.shard_slice(i, &sub))
            .collect()
    }

    /// Answers one shard's clamped sub-query: the records of `sub` from the
    /// shard's SP plus the shard TE's token over exactly that range, produced
    /// under the SP read lock held across the TE read so the slice is
    /// internally consistent. This is the unit a networked shard endpoint
    /// serves (`sae-net`'s `ShardServer` calls it per request); the returned
    /// slice is fully owned, so no tree guard outlives this call.
    pub fn shard_slice(&self, shard: usize, sub: &RangeQuery) -> StorageResult<ShardSlice> {
        let Some(s) = self.shards.get(shard) else {
            return Err(StorageError::Corrupted(format!(
                "shard {shard} does not exist in a {}-shard layout",
                self.shards.len()
            )));
        };
        let sp = s.sp.read();
        let records = sp.query(sub)?;
        let vt = s.te.read().generate_vt(sub)?;
        drop(sp);
        Ok(ShardSlice { shard, records, vt })
    }

    /// Shard `shard`'s last committed epoch — what a serving endpoint
    /// advertises on its slices. 0 for in-memory engines (which have no
    /// commit pipeline) and for durable shards that never committed.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        match &self.durability {
            Some(d) if shard < self.shards.len() => d.epoch(shard),
            _ => 0,
        }
    }

    /// Exports an epoch-stamped snapshot of shard `shard` for replica
    /// bootstrap: a [`crate::replica::SnapshotHeader`] followed by one
    /// synthetic WAL segment holding every page image, the heap page table
    /// and a `Commit` with the full shard meta (see
    /// `docs/replication.md`). Captured under the shard's tree read locks,
    /// so a consistent cut even with writers active.
    /// [`StorageError::ReplicationUnsupported`] on in-memory engines.
    pub fn export_shard_snapshot(&self, shard: usize) -> StorageResult<Vec<u8>> {
        let Some(d) = &self.durability else {
            return Err(StorageError::ReplicationUnsupported);
        };
        let Some(s) = self.shards.get(shard) else {
            return Err(StorageError::Corrupted(format!(
                "shard {shard} does not exist in a {}-shard layout",
                self.shards.len()
            )));
        };
        let sp = s.sp.read();
        let te = s.te.read();
        d.export_snapshot(shard, &sp, &te)
    }

    /// Exports the WAL tail of shard `shard` covering every commit after
    /// `from_epoch`, for incremental replica catch-up.
    /// [`StorageError::TailUnavailable`] when a checkpoint rotated the
    /// needed commits away (the replica falls back to a snapshot);
    /// [`StorageError::ReplicationUnsupported`] on in-memory engines. Takes
    /// no tree locks.
    pub fn export_wal_tail(&self, shard: usize, from_epoch: u64) -> StorageResult<Vec<u8>> {
        let Some(d) = &self.durability else {
            return Err(StorageError::ReplicationUnsupported);
        };
        if shard >= self.shards.len() {
            return Err(StorageError::Corrupted(format!(
                "shard {shard} does not exist in a {}-shard layout",
                self.shards.len()
            )));
        }
        d.export_wal_tail(shard, from_epoch)
    }

    /// The verifying client of this deployment — exposes the published
    /// parameters (hash algorithm, record length) a *remote* client needs to
    /// run the identical checks on the other side of a wire.
    pub fn client(&self) -> &SaeClient {
        &self.client
    }

    /// Client-side stitched verification of a scatter-gather response.
    /// Returns the verdict and the wall-clock milliseconds spent.
    pub fn verify_scatter(
        &self,
        q: &RangeQuery,
        slices: &[ShardSlice],
    ) -> (Result<(), ShardedVerifyError>, f64) {
        let start = Instant::now();
        let verdict = self.check_scatter(q, slices);
        (verdict, start.elapsed().as_secs_f64() * 1000.0)
    }

    fn check_scatter(
        &self,
        q: &RangeQuery,
        slices: &[ShardSlice],
    ) -> Result<(), ShardedVerifyError> {
        verify_slices(&self.layout, &self.client, q, slices)
    }

    /// Runs one query honestly end to end (scatter, gather, verify).
    pub fn query(&self, q: &RangeQuery) -> StorageResult<ShardedQueryOutcome> {
        self.query_with_tamper(q, TamperStrategy::Honest, 0)
    }

    /// Runs one query with a malicious SP corrupting the scatter-gather
    /// response before the client verifies it. The shard-level strategies
    /// ([`TamperStrategy::DropShardSlice`], [`TamperStrategy::ShardBoundarySwap`])
    /// manipulate whole slices; every other attack is applied *shard-locally*
    /// to the first non-empty slice, replaying the single-pair attacks inside
    /// one shard's domain.
    pub fn query_with_tamper(
        &self,
        q: &RangeQuery,
        tamper: TamperStrategy,
        seed: u64,
    ) -> StorageResult<ShardedQueryOutcome> {
        let mut slices = self.scatter(q)?;
        match tamper {
            TamperStrategy::Honest => {}
            TamperStrategy::DropShardSlice { shard } => {
                if !slices.is_empty() {
                    let victim = shard % slices.len();
                    slices.remove(victim);
                }
            }
            TamperStrategy::ShardBoundarySwap => {
                // Move the record adjacent to the first populated boundary
                // into the neighbouring slice. Global key order and the query
                // range are preserved; only the shard attribution is wrong.
                if let Some(i) = (0..slices.len().saturating_sub(1))
                    .find(|&i| !slices[i].records.is_empty() || !slices[i + 1].records.is_empty())
                {
                    if slices[i].records.is_empty() {
                        let moved = slices[i + 1].records.remove(0);
                        slices[i].records.push(moved);
                    } else if let Some(moved) = slices[i].records.pop() {
                        slices[i + 1].records.insert(0, moved);
                    }
                } else if let Some(slice) = slices.iter_mut().find(|s| s.records.len() >= 2) {
                    // A single responding slice has no boundary to cross;
                    // degrade to the flat-path behaviour (first/last swap,
                    // breaking key order) rather than silently not attacking.
                    let last = slice.records.len() - 1;
                    slice.records.swap(0, last);
                }
            }
            other => {
                if !slices.is_empty() {
                    let pos = slices
                        .iter()
                        .position(|s| !s.records.is_empty())
                        .unwrap_or(0);
                    let sub = self.layout.clamp(slices[pos].shard, q).ok_or_else(|| {
                        StorageError::Corrupted(
                            "scatter produced a slice from a non-overlapping shard".into(),
                        )
                    })?;
                    slices[pos].records =
                        other.apply_sized(&slices[pos].records, &sub, seed, self.record_len);
                }
            }
        }

        let (verdict, client_ms) = self.verify_scatter(q, &slices);
        let cardinality: u64 = slices.iter().map(|s| s.records.len() as u64).sum();
        Ok(ShardedQueryOutcome {
            metrics: QueryMetrics {
                result_cardinality: cardinality,
                auth_bytes: (DIGEST_LEN * slices.len()) as u64,
                client_verify_ms: client_ms,
                verified: verdict.is_ok(),
                ..Default::default()
            },
            slices,
            verdict,
        })
    }

    /// Aggregated buffer-pool counters over all shards' SPs, when built with
    /// caches.
    pub fn sp_cache_stats(&self) -> Option<IoSnapshot> {
        let mut acc: Option<IoSnapshot> = None;
        for shard in &self.shards {
            if let Some(cache) = &shard.sp_cache {
                let snap = cache.stats().snapshot();
                match &mut acc {
                    Some(total) => total.accumulate(&snap),
                    None => acc = Some(snap),
                }
            }
        }
        acc
    }

    /// Mutable access to one shard's SP, for experiments and fault injection.
    pub fn with_sp_mut<R>(&self, shard: usize, f: impl FnOnce(&mut SaeServiceProvider) -> R) -> R {
        f(&mut self.shards[shard].sp.write())
    }

    /// Mutable access to one shard's TE, for experiments and fault injection.
    pub fn with_te_mut<R>(&self, shard: usize, f: impl FnOnce(&mut TrustedEntity) -> R) -> R {
        f(&mut self.shards[shard].te.write())
    }

    /// Serves a fixed batch (see [`serve_batch`]).
    pub fn serve_batch(&self, queries: &[RangeQuery], opts: &ServeOptions) -> ThroughputReport {
        serve_batch(self, queries, opts)
    }

    /// Runs the closed-loop per-client driver (see [`serve_mix`]).
    pub fn serve_mix(
        &self,
        mix: &QueryMix,
        queries_per_client: usize,
        seed: u64,
        opts: &ServeOptions,
    ) -> ThroughputReport {
        serve_mix(self, mix, queries_per_client, seed, opts)
    }

    /// Runs the closed-loop mixed read/write driver (see [`serve_ops`]).
    pub fn serve_ops(
        &self,
        mix: &QueryMix,
        write_fraction: f64,
        record_size: usize,
        ops_per_client: usize,
        seed: u64,
        opts: &ServeOptions,
    ) -> ThroughputReport {
        serve_ops(
            self,
            mix,
            write_fraction,
            record_size,
            ops_per_client,
            seed,
            opts,
        )
    }
}

impl QueryService for ShardedSaeEngine {
    fn execute(&self, q: &RangeQuery) -> StorageResult<QueryMetrics> {
        let slices = self.scatter(q)?;
        let (verdict, client_ms) = self.verify_scatter(q, &slices);
        Ok(QueryMetrics {
            result_cardinality: slices.iter().map(|s| s.records.len() as u64).sum(),
            auth_bytes: (DIGEST_LEN * slices.len()) as u64,
            client_verify_ms: client_ms,
            verified: verdict.is_ok(),
            ..Default::default()
        })
    }

    fn party_stats(&self) -> Vec<(&'static str, Arc<IoStats>)> {
        // One "sp"/"te" pair per shard; the driver sums deltas by label, so
        // reports still show the two logical parties.
        self.shards
            .iter()
            .flat_map(|shard| {
                [
                    ("sp", Arc::clone(&shard.sp_stats)),
                    ("te", Arc::clone(&shard.te_stats)),
                ]
            })
            .collect()
    }

    fn cost_model(&self) -> CostModel {
        self.cost_model
    }
}

impl UpdateService for ShardedSaeEngine {
    fn apply_update(&self, record: &Record, hold: Duration) -> StorageResult<()> {
        self.claim(record)?;
        let shard_idx = self.layout.shard_of(record.key);
        let shard = &self.shards[shard_idx];
        let mut sp = shard.sp.write();
        let mut te = shard.te.write();
        // The round trip is committed once, after its trailing delete: the
        // committed states bracket the whole round trip, which is exactly
        // the atomicity the update protocol promises.
        match crate::sae::update_parties(&mut sp, &mut te, record, hold) {
            Ok(()) => {
                // The round trip deleted the record again, so its id can be
                // released whether or not the commit below succeeds — the
                // record exists in neither memory nor the committed state.
                let committed = match &self.durability {
                    None => Ok(()),
                    Some(d) => match d.policy() {
                        DurabilityPolicy::FlushOnClose => Ok(()),
                        _ => self.group_commit_write(d, shard, shard_idx, sp, te),
                    },
                };
                self.ids.write().remove(&record.id);
                committed
            }
            // The claim is conservatively kept on a round-trip error — the
            // record may still exist if the trailing delete was the step
            // that failed.
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sae::SaeSystem;
    use sae_storage::StorageError;
    use sae_workload::KeyDistribution;

    const DOMAIN: RecordKey = 100_000;

    fn dataset(n: usize) -> Dataset {
        DatasetSpec {
            cardinality: n,
            distribution: KeyDistribution::Uniform { domain: DOMAIN },
            record_size: 120,
            seed: 12,
        }
        .generate()
    }

    #[test]
    fn layout_partitions_the_domain_exactly() {
        for shards in [1usize, 2, 3, 4, 7, 8] {
            let layout = ShardLayout::uniform(DOMAIN, shards);
            assert_eq!(layout.shard_count(), shards);
            assert_eq!(layout.domain(), DOMAIN);
            // Ranges tile [0, domain] with no gaps or overlaps.
            let mut next = 0u64;
            for i in 0..shards {
                let r = layout.range(i);
                assert_eq!(r.lower as u64, next, "{shards} shards, shard {i}");
                assert!(r.lower <= r.upper);
                next = r.upper as u64 + 1;
            }
            assert_eq!(next, DOMAIN as u64 + 1);
            // shard_of agrees with the ranges on every boundary key.
            for i in 0..shards {
                let r = layout.range(i);
                assert_eq!(layout.shard_of(r.lower), i);
                assert_eq!(layout.shard_of(r.upper), i);
            }
        }
    }

    #[test]
    fn tiny_domains_clamp_the_shard_count() {
        // More shards than keys must not underflow the boundary arithmetic.
        let layout = ShardLayout::uniform(3, 8);
        assert_eq!(layout.shard_count(), 4);
        let mut next = 0u64;
        for i in 0..layout.shard_count() {
            let r = layout.range(i);
            assert_eq!(r.lower as u64, next);
            assert!(r.lower <= r.upper);
            next = r.upper as u64 + 1;
        }
        assert_eq!(next, 4);
    }

    #[test]
    fn boundary_swap_still_attacks_a_single_slice() {
        // A query overlapping one shard has no boundary to smuggle across;
        // the strategy must degrade to an in-slice swap, not a silent no-op.
        let ds = dataset(3_000);
        let engine = ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, 1).unwrap();
        let q = RangeQuery::new(0, DOMAIN);
        let outcome = engine
            .query_with_tamper(&q, TamperStrategy::ShardBoundarySwap, 1)
            .unwrap();
        assert!(
            matches!(
                outcome.verdict,
                Err(ShardedVerifyError::Slice {
                    error: SaeVerifyError::NotSorted,
                    ..
                })
            ),
            "{:?}",
            outcome.verdict
        );
    }

    #[test]
    fn clamp_and_overlap_agree_with_brute_force() {
        let layout = ShardLayout::uniform(DOMAIN, 4);
        let q = RangeQuery::new(20_000, 60_000);
        let overlapping = layout.overlapping(&q);
        assert_eq!(overlapping, vec![0, 1, 2]);
        for i in 0..4 {
            match layout.clamp(i, &q) {
                Some(sub) => {
                    assert!(overlapping.contains(&i));
                    assert!(sub.lower >= q.lower && sub.upper <= q.upper);
                    let r = layout.range(i);
                    assert!(sub.lower >= r.lower && sub.upper <= r.upper);
                }
                None => assert!(!overlapping.contains(&i)),
            }
        }
    }

    #[test]
    fn sharded_results_match_the_single_pair_system() {
        let ds = dataset(4_000);
        let oracle = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        for shards in [1usize, 2, 3, 5, 8] {
            let engine =
                ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, shards).unwrap();
            for q in QueryMix::spanning(DOMAIN, 0.02, shards.max(2))
                .workload(12, 31)
                .iter()
            {
                let outcome = engine.query(q).unwrap();
                assert!(outcome.verdict.is_ok(), "{shards} shards, {q}");
                let expected = oracle.query(q).unwrap();
                assert_eq!(
                    outcome.metrics.result_cardinality,
                    expected.records.len() as u64,
                    "{shards} shards, {q}"
                );
                // The stitched records are exactly the flat result.
                let stitched: Vec<Vec<u8>> = outcome
                    .slices
                    .iter()
                    .flat_map(|s| s.records.iter().cloned())
                    .collect();
                assert_eq!(stitched, expected.records, "{shards} shards, {q}");
            }
        }
    }

    #[test]
    fn dropped_shard_slices_are_detected_on_every_layout() {
        let ds = dataset(3_000);
        for shards in [1usize, 2, 3, 4, 8] {
            let engine =
                ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, shards).unwrap();
            // A query covering the whole domain touches every shard.
            let q = RangeQuery::new(0, DOMAIN);
            for victim in 0..shards {
                let outcome = engine
                    .query_with_tamper(&q, TamperStrategy::DropShardSlice { shard: victim }, 1)
                    .unwrap();
                assert!(
                    matches!(
                        outcome.verdict,
                        Err(ShardedVerifyError::MissingShardSlice { .. })
                    ),
                    "{shards} shards, dropped {victim}: {:?}",
                    outcome.verdict
                );
                assert!(!outcome.metrics.verified);
            }
        }
    }

    #[test]
    fn boundary_swaps_are_detected() {
        let ds = dataset(3_000);
        for shards in [2usize, 4] {
            let engine =
                ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, shards).unwrap();
            let q = RangeQuery::new(0, DOMAIN);
            let outcome = engine
                .query_with_tamper(&q, TamperStrategy::ShardBoundarySwap, 1)
                .unwrap();
            // The moved record's key is outside the receiving shard's clamped
            // range (and both tokens stop matching); either way the slice
            // check rejects it.
            assert!(
                matches!(outcome.verdict, Err(ShardedVerifyError::Slice { .. })),
                "{shards} shards: {:?}",
                outcome.verdict
            );
        }
    }

    #[test]
    fn shard_local_attacks_replay_the_single_pair_detections() {
        let ds = dataset(3_000);
        let engine = ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, 4).unwrap();
        let q = RangeQuery::new(10_000, 90_000);
        for strategy in [
            TamperStrategy::DropRecords { count: 1 },
            TamperStrategy::InjectRecords { count: 1 },
            TamperStrategy::ModifyRecords { count: 1 },
            TamperStrategy::DuplicatePair { count: 1 },
            TamperStrategy::DuplicateExisting { count: 1 },
        ] {
            let outcome = engine.query_with_tamper(&q, strategy, 5).unwrap();
            assert!(
                matches!(outcome.verdict, Err(ShardedVerifyError::Slice { .. })),
                "{strategy:?} went undetected: {:?}",
                outcome.verdict
            );
        }
        // The duplicate-injection replay is rejected structurally, exactly as
        // in the single-pair regression.
        let outcome = engine
            .query_with_tamper(&q, TamperStrategy::DuplicateExisting { count: 1 }, 5)
            .unwrap();
        assert!(matches!(
            outcome.verdict,
            Err(ShardedVerifyError::Slice {
                error: SaeVerifyError::DuplicateRecordId(_),
                ..
            })
        ));
    }

    #[test]
    fn routed_updates_land_on_the_owning_shard_and_round_trip() {
        let ds = dataset(2_000);
        let engine = ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, 4).unwrap();
        let record = Record::with_size(9_000_000, 70_000, 120);
        engine.insert(&record).unwrap();
        let q = RangeQuery::new(70_000, 70_000);
        let outcome = engine.query(&q).unwrap();
        assert!(outcome.verdict.is_ok());
        assert!(outcome
            .slices
            .iter()
            .flat_map(|s| s.records.iter())
            .any(|r| Record::decode(r).unwrap().id == 9_000_000));
        assert!(engine.delete(record.id, record.key).unwrap());
        let outcome = engine.query(&q).unwrap();
        assert!(outcome.verdict.is_ok());
        assert!(!outcome
            .slices
            .iter()
            .flat_map(|s| s.records.iter())
            .any(|r| Record::decode(r).unwrap().id == 9_000_000));
    }

    #[test]
    fn duplicate_ids_are_rejected_across_shards() {
        // Each shard's SP only knows its own directory; the deployment-wide
        // id directory must reject an id re-used under another shard's key.
        let ds = dataset(1_000);
        let engine = ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, 4).unwrap();
        let a = Record::with_size(7_000_000, 10_000, 120); // shard 0
        let b = Record::with_size(7_000_000, 90_000, 120); // shard 3, same id
        engine.insert(&a).unwrap();
        assert!(matches!(
            engine.insert(&b),
            Err(StorageError::DuplicateRecordId(7_000_000))
        ));
        // Pre-loaded dataset ids are protected too.
        let clash = Record::with_size(ds.records[0].id, 90_000, 120);
        assert!(matches!(
            engine.insert(&clash),
            Err(StorageError::DuplicateRecordId(_))
        ));
        // Deleting releases the id for re-use.
        assert!(engine.delete(a.id, a.key).unwrap());
        engine.insert(&b).unwrap();
    }

    #[test]
    fn out_of_domain_keys_are_rejected_instead_of_stranded() {
        // A key above the layout domain would land in the last shard but be
        // excluded from every clamped sub-query — silent data loss. Reject it.
        let ds = dataset(500);
        let engine = ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, 4).unwrap();
        let stray = Record::with_size(7_500_000, DOMAIN + 1, 120);
        assert!(matches!(
            engine.insert(&stray),
            Err(StorageError::KeyOutOfDomain { .. })
        ));
        // The id was not claimed by the failed insert.
        let ok = Record::with_size(7_500_000, DOMAIN, 120);
        engine.insert(&ok).unwrap();
    }

    #[test]
    fn one_sided_shard_deletes_roll_back_and_report_desync() {
        let ds = dataset(1_500);
        let engine = ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, 4).unwrap();
        let victim = ds.records[11].clone();
        let shard = engine.layout().shard_of(victim.key);
        // Diverge one shard: its TE loses the tuple, its SP keeps the record.
        assert!(engine.with_te_mut(shard, |te| te.delete(victim.id, victim.key).unwrap()));
        assert!(matches!(
            engine.delete(victim.id, victim.key),
            Err(StorageError::Desync(_))
        ));
        // Rolled back: the record is still served by its shard...
        let q = RangeQuery::new(victim.key, victim.key);
        let outcome = engine.query(&q).unwrap();
        assert!(outcome
            .slices
            .iter()
            .flat_map(|s| s.records.iter())
            .any(|r| Record::decode(r).unwrap().id == victim.id));
        // ...and the divergence is *detected* by verification, not hidden.
        assert!(!outcome.metrics.verified);
    }

    #[test]
    fn concurrent_spanning_batches_verify_under_sharded_writes() {
        let ds = dataset(3_000);
        let engine =
            Arc::new(ShardedSaeEngine::build_cached(&ds, HashAlgorithm::Sha1, 4, 128).unwrap());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            let writer = Arc::clone(&engine);
            let writer_stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0u64;
                while !writer_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let r = Record::with_size(8_000_000 + i, (i % DOMAIN as u64) as RecordKey, 120);
                    writer.insert(&r).unwrap();
                    assert!(writer.delete(r.id, r.key).unwrap());
                    i += 1;
                }
            });
            let queries = QueryMix::spanning(DOMAIN, 0.02, 4).workload(80, 9).queries;
            let report = engine.serve_batch(
                &queries,
                &ServeOptions {
                    threads: 3,
                    io_micros_per_query: 0,
                },
            );
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            assert_eq!(report.failed, 0);
            assert!(report.all_verified, "a sharded update tore a query's view");
            // The grouped accounting still reports the two logical parties.
            assert_eq!(report.party_io.len(), 2);
            assert!(report.totals.sp_node_accesses > 0);
            assert!(report.totals.te_node_accesses > 0);
        });
    }

    #[test]
    fn durable_engine_round_trips_through_close_and_open() {
        let dir = tempfile::tempdir().unwrap();
        let ds = dataset(2_000);
        let q = RangeQuery::new(10_000, 90_000);

        let engine =
            ShardedSaeEngine::create_dir(dir.path(), &ds, HashAlgorithm::Sha1, 3, Some(128))
                .unwrap();
        assert!(engine.is_durable());
        // A committed update must survive the restart.
        let fresh = Record::with_size(9_100_000, 50_000, 120);
        engine.insert(&fresh).unwrap();
        let before = engine.query(&q).unwrap();
        assert!(before.verdict.is_ok());
        let layout = engine.layout().clone();
        engine.close().unwrap();

        let reopened =
            ShardedSaeEngine::open_dir(dir.path(), HashAlgorithm::Sha1, Some(128)).unwrap();
        assert!(reopened.is_durable());
        assert_eq!(reopened.shard_count(), 3);
        assert_eq!(reopened.layout(), &layout);
        let after = reopened.query(&q).unwrap();
        assert!(after.verdict.is_ok(), "{:?}", after.verdict);
        // Identical records and identical per-slice digests: the reopened
        // deployment serves the same authenticated state.
        assert_eq!(after.slices.len(), before.slices.len());
        for (a, b) in after.slices.iter().zip(&before.slices) {
            assert_eq!(a.shard, b.shard);
            assert_eq!(a.records, b.records);
            assert_eq!(a.vt, b.vt);
        }
        let one = reopened.query(&RangeQuery::new(50_000, 50_000)).unwrap();
        assert!(one.verdict.is_ok());
        assert!(one
            .slices
            .iter()
            .flat_map(|s| s.records.iter())
            .any(|r| Record::decode(r).unwrap().id == 9_100_000));
        // The recovered id directory still rejects cross-shard duplicates.
        assert!(matches!(
            reopened.insert(&Record::with_size(9_100_000, 1_000, 120)),
            Err(StorageError::DuplicateRecordId(_))
        ));
        // Tampers are still detected after recovery.
        for strategy in [
            TamperStrategy::DropShardSlice { shard: 1 },
            TamperStrategy::ShardBoundarySwap,
            TamperStrategy::DuplicateExisting { count: 1 },
            TamperStrategy::DropRecords { count: 1 },
        ] {
            let outcome = reopened.query_with_tamper(&q, strategy, 3).unwrap();
            assert!(!outcome.metrics.verified, "{strategy:?} went undetected");
        }
    }

    #[test]
    fn reopened_updates_persist_without_rebuilding() {
        let dir = tempfile::tempdir().unwrap();
        let ds = dataset(800);
        let engine =
            ShardedSaeEngine::create_dir(dir.path(), &ds, HashAlgorithm::Sha1, 2, None).unwrap();
        let victim = ds.records[5].clone();
        assert!(engine.delete(victim.id, victim.key).unwrap());
        engine.close().unwrap();

        // Deletion survived; the tombstoned heap slot is not resurrected.
        let reopened = ShardedSaeEngine::open_dir(dir.path(), HashAlgorithm::Sha1, None).unwrap();
        let outcome = reopened
            .query(&RangeQuery::new(victim.key, victim.key))
            .unwrap();
        assert!(outcome.verdict.is_ok());
        assert!(!outcome
            .slices
            .iter()
            .flat_map(|s| s.records.iter())
            .any(|r| Record::decode(r).unwrap().id == victim.id));
        // Its id is free for re-use after recovery.
        reopened
            .insert(&Record::with_size(victim.id, victim.key, 120))
            .unwrap();
        reopened.close().unwrap();
    }

    /// The sum of pager fsyncs across every shard and party.
    fn total_syncs(engine: &ShardedSaeEngine) -> u64 {
        engine
            .party_stats()
            .iter()
            .map(|(_, stats)| stats.snapshot().syncs)
            .sum()
    }

    #[test]
    fn group_policy_batches_commits_into_fewer_fsyncs() {
        let ds = dataset(600);
        let writers = 4usize;
        let records: Vec<Record> = (0..writers as u64)
            .map(|i| Record::with_size(9_500_000 + i, 40_000 + i as RecordKey, 120))
            .collect();

        // Immediate: every insert pays exactly one log fsync.
        let dir = tempfile::tempdir().unwrap();
        let engine =
            ShardedSaeEngine::create_dir(dir.path(), &ds, HashAlgorithm::Sha1, 1, Some(256))
                .unwrap();
        let before = total_syncs(&engine);
        for r in &records {
            engine.insert(r).unwrap();
        }
        let immediate_syncs = total_syncs(&engine) - before;
        assert_eq!(immediate_syncs, writers as u64);
        engine.close().unwrap();

        // Group with a generous gather window: four concurrent writers of
        // the same shard must ride one (or at worst two) batched commits.
        let dir = tempfile::tempdir().unwrap();
        let engine = ShardedSaeEngine::create_dir_with(
            dir.path(),
            &ds,
            HashAlgorithm::Sha1,
            1,
            Some(256),
            DurabilityPolicy::Group {
                max_batch: writers,
                max_wait: Duration::from_millis(500),
            },
        )
        .unwrap();
        assert_eq!(
            engine.durability_policy(),
            Some(DurabilityPolicy::Group {
                max_batch: writers,
                max_wait: Duration::from_millis(500),
            })
        );
        let before = total_syncs(&engine);
        std::thread::scope(|scope| {
            for r in &records {
                let engine = &engine;
                scope.spawn(move || engine.insert(r).unwrap());
            }
        });
        let group_syncs = total_syncs(&engine) - before;
        assert!(
            group_syncs < immediate_syncs,
            "group commit did not reduce fsyncs: {group_syncs} vs {immediate_syncs} (immediate)"
        );
        engine.close().unwrap();

        // Every acknowledged write is durable: the reopened deployment
        // serves all four records, verified.
        let reopened = ShardedSaeEngine::open_dir(dir.path(), HashAlgorithm::Sha1, None).unwrap();
        for r in &records {
            let outcome = reopened.query(&RangeQuery::new(r.key, r.key)).unwrap();
            assert!(outcome.verdict.is_ok());
            assert!(outcome
                .slices
                .iter()
                .flat_map(|s| s.records.iter())
                .any(|enc| Record::decode(enc).unwrap().id == r.id));
        }
    }

    /// Concurrent group-policy writers plus a flusher hammering
    /// `flush()` (which commits under read locks): no ticket may be lost
    /// (every writer returns), the per-shard epochs must stay monotone and
    /// the manifest must never lag the files — both checked by the reopen,
    /// which rejects any epoch inversion as `StaleManifest`/`Corrupted`.
    #[test]
    fn group_writers_and_concurrent_flushes_commit_everything() {
        let ds = dataset(1_000);
        let dir = tempfile::tempdir().unwrap();
        let engine = ShardedSaeEngine::create_dir_with(
            dir.path(),
            &ds,
            HashAlgorithm::Sha1,
            4,
            Some(256),
            DurabilityPolicy::group(),
        )
        .unwrap();
        let writers = 4u64;
        let ops_per_writer = 8u64;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for w in 0..writers {
                let engine = &engine;
                scope.spawn(move || {
                    for i in 0..ops_per_writer {
                        let id = 9_600_000 + w * 1_000 + i;
                        let key = ((id * 7_919) % (DOMAIN as u64 + 1)) as RecordKey;
                        let r = Record::with_size(id, key, 120);
                        engine.insert(&r).unwrap();
                        if i % 2 == 1 {
                            assert!(engine.delete(r.id, r.key).unwrap());
                        }
                    }
                });
            }
            let flusher_stop = Arc::clone(&stop);
            let flusher = &engine;
            scope.spawn(move || {
                while !flusher_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    flusher.flush().unwrap();
                }
            });
            // Writers finish, then the flusher is told to stop. (Scoped
            // threads: writer handles joined implicitly at scope end, but
            // the stop flag must flip once writers are done — easiest is to
            // wait for the write volume to land.)
            scope.spawn({
                let stop = Arc::clone(&stop);
                let engine = &engine;
                move || {
                    let expect_kept = writers * ops_per_writer / 2;
                    loop {
                        let outcome = engine.query(&RangeQuery::new(0, DOMAIN)).unwrap();
                        let kept = outcome
                            .slices
                            .iter()
                            .flat_map(|s| s.records.iter())
                            .filter(|enc| Record::decode(enc).unwrap().id >= 9_600_000)
                            .count() as u64;
                        if kept == expect_kept && outcome.verdict.is_ok() {
                            stop.store(true, std::sync::atomic::Ordering::Relaxed);
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        });
        engine.close().unwrap();

        // The reopen is the epoch-consistency check: any manifest/file epoch
        // skew would surface as StaleManifest or Corrupted here.
        let reopened = ShardedSaeEngine::open_dir(dir.path(), HashAlgorithm::Sha1, None).unwrap();
        let outcome = reopened.query(&RangeQuery::new(0, DOMAIN)).unwrap();
        assert!(outcome.verdict.is_ok(), "{:?}", outcome.verdict);
        let kept: Vec<u64> = outcome
            .slices
            .iter()
            .flat_map(|s| s.records.iter())
            .map(|enc| Record::decode(enc).unwrap().id)
            .filter(|&id| id >= 9_600_000)
            .collect();
        assert_eq!(kept.len() as u64, writers * ops_per_writer / 2);
    }

    #[test]
    fn flush_on_close_policy_defers_all_commits_to_close() {
        let ds = dataset(500);
        let dir = tempfile::tempdir().unwrap();
        let engine = ShardedSaeEngine::create_dir_with(
            dir.path(),
            &ds,
            HashAlgorithm::Sha1,
            2,
            Some(256),
            DurabilityPolicy::FlushOnClose,
        )
        .unwrap();
        let before = total_syncs(&engine);
        let fresh = Record::with_size(9_700_000, 12_345, 120);
        engine.insert(&fresh).unwrap();
        assert_eq!(total_syncs(&engine) - before, 0, "insert must not sync");
        engine.close().unwrap();

        let reopened = ShardedSaeEngine::open_dir(dir.path(), HashAlgorithm::Sha1, None).unwrap();
        let outcome = reopened
            .query(&RangeQuery::new(fresh.key, fresh.key))
            .unwrap();
        assert!(outcome.verdict.is_ok());
        assert!(outcome
            .slices
            .iter()
            .flat_map(|s| s.records.iter())
            .any(|enc| Record::decode(enc).unwrap().id == fresh.id));
    }

    #[test]
    fn write_heavy_ops_scale_with_shards() {
        let ds = dataset(2_000);
        let mix = QueryMix::spanning(DOMAIN, 0.005, 4);
        let opts = ServeOptions {
            threads: 4,
            io_micros_per_query: 400,
        };
        let ops_per_client = 24;
        let one = ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, 1).unwrap();
        let four = ShardedSaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1, 4).unwrap();
        let a = one.serve_ops(&mix, 0.8, 120, ops_per_client, 3, &opts);
        let b = four.serve_ops(&mix, 0.8, 120, ops_per_client, 3, &opts);
        assert!(a.all_verified && b.all_verified);
        assert_eq!(a.queries, b.queries);
        assert!(
            b.queries_per_sec > 1.5 * a.queries_per_sec,
            "4-shard write-heavy qps {:.0} did not scale over 1-shard {:.0}",
            b.queries_per_sec,
            a.queries_per_sec
        );
    }
}
