//! Malicious service-provider behaviours.
//!
//! The paper's security analysis (§II) models a malicious SP that returns
//! `RS^SP = (RS - DS) ∪ IS`: it may drop a subset `DS` of the genuine result
//! (attacking completeness) and/or inject a set `IS` of fabricated records
//! (attacking soundness); modifying a record is the combination of both.
//! [`TamperStrategy`] reproduces those behaviours so integration tests and the
//! examples can demonstrate that both SAE and TOM clients reject every
//! non-trivial tampering.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sae_workload::{RangeQuery, Record};

/// How a malicious SP corrupts the result set before returning it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TamperStrategy {
    /// Behave honestly.
    Honest,
    /// Drop `count` records from the result (completeness attack, `DS`).
    DropRecords {
        /// How many records to silently remove.
        count: usize,
    },
    /// Inject `count` fabricated records with in-range keys (soundness attack,
    /// `IS`).
    InjectRecords {
        /// How many bogus records to add.
        count: usize,
    },
    /// Flip payload bytes of `count` records (equivalent to one drop plus one
    /// injection per record).
    ModifyRecords {
        /// How many records to modify in place.
        count: usize,
    },
    /// Return a completely fabricated result of `count` in-range records.
    SubstituteResult {
        /// Cardinality of the fabricated result.
        count: usize,
    },
}

impl TamperStrategy {
    /// Whether this strategy actually changes a non-empty result.
    pub fn is_attack(&self) -> bool {
        !matches!(self, TamperStrategy::Honest)
    }

    /// Applies the strategy to an honest result (encoded records in result
    /// order). `query` is used to fabricate in-range records, `seed` makes the
    /// corruption deterministic.
    pub fn apply(&self, honest: &[Vec<u8>], query: &RangeQuery, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<Vec<u8>> = honest.to_vec();
        let record_size = honest.first().map(|r| r.len()).unwrap_or(500);
        match *self {
            TamperStrategy::Honest => out,
            TamperStrategy::DropRecords { count } => {
                for _ in 0..count.min(out.len()) {
                    let victim = rng.gen_range(0..out.len());
                    out.remove(victim);
                }
                out
            }
            TamperStrategy::InjectRecords { count } => {
                for i in 0..count {
                    let key = rng.gen_range(query.lower..=query.upper);
                    let bogus = Record::with_size(u64::MAX - i as u64, key, record_size);
                    let encoded = bogus.encode();
                    let pos = out.partition_point(|r| {
                        Record::decode(r).map(|d| d.key <= key).unwrap_or(false)
                    });
                    out.insert(pos, encoded);
                }
                out
            }
            TamperStrategy::ModifyRecords { count } => {
                for _ in 0..count.min(out.len()) {
                    let victim = rng.gen_range(0..out.len());
                    let len = out[victim].len();
                    // Flip a payload byte (never the id/key header, so the
                    // corruption is only detectable cryptographically).
                    let byte = rng.gen_range(12..len);
                    out[victim][byte] ^= 0xA5;
                }
                out
            }
            TamperStrategy::SubstituteResult { count } => (0..count)
                .map(|i| {
                    let key = rng.gen_range(query.lower..=query.upper);
                    Record::with_size(u64::MAX / 2 + i as u64, key, record_size).encode()
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest(n: u64) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| Record::with_size(i, 100 + i as u32, 100).encode())
            .collect()
    }

    #[test]
    fn honest_strategy_is_identity() {
        let rs = honest(5);
        assert_eq!(
            TamperStrategy::Honest.apply(&rs, &RangeQuery::new(0, 1000), 1),
            rs
        );
        assert!(!TamperStrategy::Honest.is_attack());
    }

    #[test]
    fn drop_reduces_cardinality() {
        let rs = honest(10);
        let q = RangeQuery::new(0, 1000);
        let out = TamperStrategy::DropRecords { count: 3 }.apply(&rs, &q, 7);
        assert_eq!(out.len(), 7);
        // Every surviving record is one of the originals.
        assert!(out.iter().all(|r| rs.contains(r)));
    }

    #[test]
    fn inject_adds_in_range_records() {
        let rs = honest(5);
        let q = RangeQuery::new(100, 104);
        let out = TamperStrategy::InjectRecords { count: 2 }.apply(&rs, &q, 9);
        assert_eq!(out.len(), 7);
        let injected: Vec<Record> = out
            .iter()
            .filter(|r| !rs.contains(*r))
            .map(|r| Record::decode(r).unwrap())
            .collect();
        assert_eq!(injected.len(), 2);
        assert!(injected.iter().all(|r| q.contains(r.key)));
        // Keys stay sorted so the attack is not trivially detectable.
        let keys: Vec<u32> = out.iter().map(|r| Record::decode(r).unwrap().key).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn modify_keeps_cardinality_but_changes_bytes() {
        let rs = honest(6);
        let q = RangeQuery::new(0, 1000);
        let out = TamperStrategy::ModifyRecords { count: 2 }.apply(&rs, &q, 3);
        assert_eq!(out.len(), 6);
        let changed = out.iter().zip(rs.iter()).filter(|(a, b)| a != b).count();
        assert!((1..=2).contains(&changed));
        // Keys and ids are untouched: only payload bytes differ.
        for (a, b) in out.iter().zip(rs.iter()) {
            assert_eq!(&a[..12], &b[..12]);
        }
    }

    #[test]
    fn substitute_fabricates_everything() {
        let rs = honest(4);
        let q = RangeQuery::new(100, 103);
        let out = TamperStrategy::SubstituteResult { count: 3 }.apply(&rs, &q, 5);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| !rs.contains(r)));
        assert!(out
            .iter()
            .all(|r| q.contains(Record::decode(r).unwrap().key)));
    }

    #[test]
    fn tampering_is_deterministic_per_seed() {
        let rs = honest(10);
        let q = RangeQuery::new(0, 1000);
        let s = TamperStrategy::DropRecords { count: 2 };
        assert_eq!(s.apply(&rs, &q, 42), s.apply(&rs, &q, 42));
    }

    #[test]
    fn tampering_empty_results_is_safe() {
        let q = RangeQuery::new(10, 20);
        for s in [
            TamperStrategy::DropRecords { count: 3 },
            TamperStrategy::ModifyRecords { count: 3 },
            TamperStrategy::InjectRecords { count: 1 },
        ] {
            let out = s.apply(&[], &q, 1);
            match s {
                TamperStrategy::InjectRecords { .. } => assert_eq!(out.len(), 1),
                _ => assert!(out.is_empty()),
            }
        }
    }
}
