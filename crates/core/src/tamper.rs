//! Malicious service-provider behaviours.
//!
//! The paper's security analysis (§II) models a malicious SP that returns
//! `RS^SP = (RS - DS) ∪ IS`: it may drop a subset `DS` of the genuine result
//! (attacking completeness) and/or inject a set `IS` of fabricated records
//! (attacking soundness); modifying a record is the combination of both.
//! [`TamperStrategy`] reproduces those behaviours so integration tests and the
//! examples can demonstrate that both SAE and TOM clients reject every
//! non-trivial tampering.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sae_workload::{RangeQuery, Record, RECORD_HEADER_LEN};

/// How a malicious SP corrupts the result set before returning it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TamperStrategy {
    /// Behave honestly.
    Honest,
    /// Drop `count` records from the result (completeness attack, `DS`).
    DropRecords {
        /// How many records to silently remove.
        count: usize,
    },
    /// Inject `count` fabricated records with in-range keys (soundness attack,
    /// `IS`).
    InjectRecords {
        /// How many bogus records to add.
        count: usize,
    },
    /// Flip payload bytes of `count` records (equivalent to one drop plus one
    /// injection per record).
    ModifyRecords {
        /// How many records to modify in place.
        count: usize,
    },
    /// Return a completely fabricated result of `count` in-range records.
    SubstituteResult {
        /// Cardinality of the fabricated result.
        count: usize,
    },
    /// Inject the *same* fabricated in-range record twice, `count` times
    /// (soundness attack targeting XOR cancellation: `h(r) ⊕ h(r) = 0`, so a
    /// bare XOR fold of the digests is unchanged by the pair).
    DuplicatePair {
        /// How many bogus record pairs to inject.
        count: usize,
    },
    /// Duplicate `count` genuine result records twice each (two extra copies
    /// per victim), again exploiting even-multiplicity XOR cancellation while
    /// only using records the SP legitimately holds.
    DuplicateExisting {
        /// How many genuine records to triple up.
        count: usize,
    },
    /// Silently drop one shard's *entire* result slice from a scatter-gather
    /// answer (completeness attack against a sharded deployment). The
    /// sharded query path interprets `shard` modulo the number of responding
    /// slices; on a flat (unsharded) result the whole result is the only
    /// slice, so everything is dropped.
    DropShardSlice {
        /// Index of the responding slice to drop.
        shard: usize,
    },
    /// Move the record adjacent to a shard boundary from its own shard's
    /// slice into the neighbouring shard's slice (soundness attack against
    /// scatter-gather stitching: the record still lies in the query range and
    /// global key order is preserved, but it is folded into the wrong shard's
    /// token). On a flat result there is no boundary; the first and last
    /// records are swapped instead, which breaks the key ordering.
    ShardBoundarySwap,
}

impl TamperStrategy {
    /// Whether this strategy actually changes a non-empty result.
    pub fn is_attack(&self) -> bool {
        !matches!(self, TamperStrategy::Honest)
    }

    /// Applies the strategy to an honest result (encoded records in result
    /// order). `query` is used to fabricate in-range records, `seed` makes the
    /// corruption deterministic.
    ///
    /// Fabricated records take their size from the first honest record; on an
    /// empty result this falls back to 500 bytes (the paper's record size).
    /// Callers that know the dataset's actual record format should use
    /// [`TamperStrategy::apply_sized`] instead.
    pub fn apply(&self, honest: &[Vec<u8>], query: &RangeQuery, seed: u64) -> Vec<Vec<u8>> {
        let record_size = honest.first().map(|r| r.len()).unwrap_or(500);
        self.apply_sized(honest, query, seed, record_size)
    }

    /// Like [`TamperStrategy::apply`], but fabricating records of exactly
    /// `record_size` bytes, so an attack against an empty result still matches
    /// the dataset's record format. `record_size` is clamped to the record
    /// header so fabrication never panics on tiny formats.
    pub fn apply_sized(
        &self,
        honest: &[Vec<u8>],
        query: &RangeQuery,
        seed: u64,
        record_size: usize,
    ) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<Vec<u8>> = honest.to_vec();
        let record_size = record_size.max(RECORD_HEADER_LEN);
        match *self {
            TamperStrategy::Honest => out,
            TamperStrategy::DropRecords { count } => {
                for _ in 0..count.min(out.len()) {
                    let victim = rng.gen_range(0..out.len());
                    out.remove(victim);
                }
                out
            }
            TamperStrategy::InjectRecords { count } => {
                for i in 0..count {
                    let key = rng.gen_range(query.lower..=query.upper);
                    let bogus = Record::with_size(u64::MAX - i as u64, key, record_size);
                    insert_sorted(&mut out, bogus.encode(), key);
                }
                out
            }
            TamperStrategy::ModifyRecords { count } => {
                for _ in 0..count.min(out.len()) {
                    let victim = rng.gen_range(0..out.len());
                    let len = out[victim].len();
                    // Flip a payload byte where one exists (never the id/key
                    // header, so the corruption is only detectable
                    // cryptographically); header-only records have no payload,
                    // so fall back to flipping a header byte.
                    let byte = if len > RECORD_HEADER_LEN {
                        rng.gen_range(RECORD_HEADER_LEN..len)
                    } else if len > 0 {
                        rng.gen_range(0..len)
                    } else {
                        continue;
                    };
                    out[victim][byte] ^= 0xA5;
                }
                out
            }
            TamperStrategy::SubstituteResult { count } => (0..count)
                .map(|i| {
                    let key = rng.gen_range(query.lower..=query.upper);
                    Record::with_size(u64::MAX / 2 + i as u64, key, record_size).encode()
                })
                .collect(),
            TamperStrategy::DuplicatePair { count } => {
                for i in 0..count {
                    let key = rng.gen_range(query.lower..=query.upper);
                    let bogus = Record::with_size(u64::MAX - i as u64, key, record_size).encode();
                    insert_sorted(&mut out, bogus.clone(), key);
                    insert_sorted(&mut out, bogus, key);
                }
                out
            }
            TamperStrategy::DuplicateExisting { count } => {
                for _ in 0..count.min(honest.len()) {
                    let victim = out[rng.gen_range(0..out.len())].clone();
                    let key = Record::decode(&victim).map(|r| r.key).unwrap_or_default();
                    insert_sorted(&mut out, victim.clone(), key);
                    insert_sorted(&mut out, victim, key);
                }
                out
            }
            TamperStrategy::DropShardSlice { .. } => Vec::new(),
            TamperStrategy::ShardBoundarySwap => {
                if out.len() >= 2 {
                    let last = out.len() - 1;
                    out.swap(0, last);
                }
                out
            }
        }
    }
}

/// Inserts an encoded record so the result stays sorted by key (the attack
/// must not be trivially detectable from the ordering alone).
fn insert_sorted(out: &mut Vec<Vec<u8>>, encoded: Vec<u8>, key: u32) {
    let pos = out.partition_point(|r| Record::decode(r).map(|d| d.key <= key).unwrap_or(false));
    out.insert(pos, encoded);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest(n: u64) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| Record::with_size(i, 100 + i as u32, 100).encode())
            .collect()
    }

    #[test]
    fn honest_strategy_is_identity() {
        let rs = honest(5);
        assert_eq!(
            TamperStrategy::Honest.apply(&rs, &RangeQuery::new(0, 1000), 1),
            rs
        );
        assert!(!TamperStrategy::Honest.is_attack());
    }

    #[test]
    fn drop_reduces_cardinality() {
        let rs = honest(10);
        let q = RangeQuery::new(0, 1000);
        let out = TamperStrategy::DropRecords { count: 3 }.apply(&rs, &q, 7);
        assert_eq!(out.len(), 7);
        // Every surviving record is one of the originals.
        assert!(out.iter().all(|r| rs.contains(r)));
    }

    #[test]
    fn inject_adds_in_range_records() {
        let rs = honest(5);
        let q = RangeQuery::new(100, 104);
        let out = TamperStrategy::InjectRecords { count: 2 }.apply(&rs, &q, 9);
        assert_eq!(out.len(), 7);
        let injected: Vec<Record> = out
            .iter()
            .filter(|r| !rs.contains(*r))
            .map(|r| Record::decode(r).unwrap())
            .collect();
        assert_eq!(injected.len(), 2);
        assert!(injected.iter().all(|r| q.contains(r.key)));
        // Keys stay sorted so the attack is not trivially detectable.
        let keys: Vec<u32> = out.iter().map(|r| Record::decode(r).unwrap().key).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn modify_keeps_cardinality_but_changes_bytes() {
        let rs = honest(6);
        let q = RangeQuery::new(0, 1000);
        let out = TamperStrategy::ModifyRecords { count: 2 }.apply(&rs, &q, 3);
        assert_eq!(out.len(), 6);
        let changed = out.iter().zip(rs.iter()).filter(|(a, b)| a != b).count();
        assert!((1..=2).contains(&changed));
        // Keys and ids are untouched: only payload bytes differ.
        for (a, b) in out.iter().zip(rs.iter()) {
            assert_eq!(&a[..12], &b[..12]);
        }
    }

    #[test]
    fn substitute_fabricates_everything() {
        let rs = honest(4);
        let q = RangeQuery::new(100, 103);
        let out = TamperStrategy::SubstituteResult { count: 3 }.apply(&rs, &q, 5);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| !rs.contains(r)));
        assert!(out
            .iter()
            .all(|r| q.contains(Record::decode(r).unwrap().key)));
    }

    #[test]
    fn duplicate_pair_injects_the_same_record_twice() {
        let rs = honest(5);
        let q = RangeQuery::new(100, 104);
        let out = TamperStrategy::DuplicatePair { count: 2 }.apply(&rs, &q, 11);
        assert_eq!(out.len(), 9);
        let injected: Vec<&Vec<u8>> = out.iter().filter(|r| !rs.contains(*r)).collect();
        assert_eq!(injected.len(), 4);
        // Each bogus record appears an even number of times.
        for r in &injected {
            assert_eq!(injected.iter().filter(|x| x == &r).count() % 2, 0);
        }
        // Keys stay sorted so the attack is not trivially detectable.
        let keys: Vec<u32> = out.iter().map(|r| Record::decode(r).unwrap().key).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn duplicate_existing_triples_genuine_records() {
        let rs = honest(6);
        let q = RangeQuery::new(0, 1000);
        let out = TamperStrategy::DuplicateExisting { count: 1 }.apply(&rs, &q, 4);
        assert_eq!(out.len(), 8);
        // Every record in the tampered result is a genuine one, and exactly
        // one of them occurs three times.
        assert!(out.iter().all(|r| rs.contains(r)));
        let tripled = rs
            .iter()
            .filter(|r| out.iter().filter(|x| x == r).count() == 3)
            .count();
        assert_eq!(tripled, 1);
        let keys: Vec<u32> = out.iter().map(|r| Record::decode(r).unwrap().key).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn modify_does_not_panic_on_header_only_records() {
        // 12-byte records have no payload; the old implementation panicked in
        // gen_range(12..12).
        let rs: Vec<Vec<u8>> = (0..4u64)
            .map(|i| Record::with_size(i, 100 + i as u32, RECORD_HEADER_LEN).encode())
            .collect();
        let q = RangeQuery::new(0, 1000);
        let out = TamperStrategy::ModifyRecords { count: 2 }.apply(&rs, &q, 3);
        assert_eq!(out.len(), 4);
        // Something changed (a header byte, since there is no payload).
        assert!(out.iter().zip(rs.iter()).any(|(a, b)| a != b));
    }

    #[test]
    fn inject_into_empty_result_respects_the_dataset_record_size() {
        let q = RangeQuery::new(10, 20);
        for strategy in [
            TamperStrategy::InjectRecords { count: 2 },
            TamperStrategy::SubstituteResult { count: 2 },
            TamperStrategy::DuplicatePair { count: 1 },
        ] {
            let out = strategy.apply_sized(&[], &q, 1, 64);
            assert_eq!(out.len(), 2, "{strategy:?}");
            assert!(out.iter().all(|r| r.len() == 64), "{strategy:?}");
        }
        // Sizes below the record header are clamped instead of panicking.
        let out = TamperStrategy::InjectRecords { count: 1 }.apply_sized(&[], &q, 1, 3);
        assert_eq!(out[0].len(), RECORD_HEADER_LEN);
    }

    #[test]
    fn shard_attacks_degrade_sensibly_on_flat_results() {
        let rs = honest(5);
        let q = RangeQuery::new(0, 1000);
        // A flat result is one slice: dropping "the" shard drops everything.
        assert!(TamperStrategy::DropShardSlice { shard: 3 }
            .apply(&rs, &q, 1)
            .is_empty());
        // A boundary swap has no boundary to cross: first/last are swapped,
        // which at least breaks the key ordering.
        let swapped = TamperStrategy::ShardBoundarySwap.apply(&rs, &q, 1);
        assert_eq!(swapped.len(), rs.len());
        assert_eq!(swapped[0], rs[rs.len() - 1]);
        assert_eq!(swapped[rs.len() - 1], rs[0]);
        assert!(TamperStrategy::DropShardSlice { shard: 0 }.is_attack());
        assert!(TamperStrategy::ShardBoundarySwap.is_attack());
    }

    #[test]
    fn tampering_is_deterministic_per_seed() {
        let rs = honest(10);
        let q = RangeQuery::new(0, 1000);
        let s = TamperStrategy::DropRecords { count: 2 };
        assert_eq!(s.apply(&rs, &q, 42), s.apply(&rs, &q, 42));
    }

    #[test]
    fn tampering_empty_results_is_safe() {
        let q = RangeQuery::new(10, 20);
        for s in [
            TamperStrategy::DropRecords { count: 3 },
            TamperStrategy::ModifyRecords { count: 3 },
            TamperStrategy::InjectRecords { count: 1 },
        ] {
            let out = s.apply(&[], &q, 1);
            match s {
                TamperStrategy::InjectRecords { .. } => assert_eq!(out.len(), 1),
                _ => assert!(out.is_empty()),
            }
        }
    }
}
