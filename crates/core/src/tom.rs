//! The TOM deployment (baseline): DO → SP → client, with an MB-Tree ADS.
//!
//! Under the traditional outsourcing model the data owner builds an
//! authenticated data structure over its dataset, signs the root digest and
//! ships everything to the service provider, which answers every query with
//! both the result and a verification object. The client re-constructs the
//! root digest from the result and the VO and checks it against the owner's
//! signature (§I). This module wires those roles together so the benchmark
//! harness can compare TOM and SAE side by side.

use crate::metrics::{QueryMetrics, StorageBreakdown};
use crate::tamper::TamperStrategy;
use sae_crypto::signer::{SignatureBytes, Signer, Verifier};
use sae_crypto::HashAlgorithm;
use sae_mbtree::{MbTree, VerificationObject};
use sae_storage::{CostModel, HeapFile, MemPager, RecordId, SharedPageStore, StorageResult};
use sae_workload::{Dataset, RangeQuery, Record};
use std::collections::HashMap;
use std::time::Instant;

/// Everything a query run produces under TOM.
#[derive(Clone, Debug)]
pub struct TomQueryOutcome {
    /// The (possibly tampered) result the SP returned, encoded records.
    pub records: Vec<Vec<u8>>,
    /// The verification object accompanying the result.
    pub vo: VerificationObject,
    /// Cost accounting for this query.
    pub metrics: QueryMetrics,
}

/// A complete TOM deployment.
///
/// The `S`/`V` type parameters are the data owner's signature scheme; the
/// benchmarks use [`sae_crypto::RsaSigner`], fast tests use
/// [`sae_crypto::MacSigner`].
pub struct TomSystem<S: Signer, V: Verifier> {
    store: SharedPageStore,
    heap: HeapFile,
    tree: MbTree,
    directory: HashMap<u64, RecordId>,
    signer: S,
    verifier: V,
    signature: SignatureBytes,
    alg: HashAlgorithm,
    cost_model: CostModel,
}

impl<S: Signer, V: Verifier> TomSystem<S, V> {
    /// Builds a TOM deployment: the DO ships the dataset, the SP builds the
    /// MB-Tree, and the DO signs the root digest.
    pub fn build(
        store: SharedPageStore,
        dataset: &Dataset,
        alg: HashAlgorithm,
        cost_model: CostModel,
        signer: S,
        verifier: V,
    ) -> StorageResult<Self> {
        let sorted = dataset.sorted_by_key();
        let mut heap = HeapFile::create(store.clone(), dataset.spec.record_size)?;
        let encoded: Vec<Vec<u8>> = sorted.iter().map(|r| r.encode()).collect();
        heap.append_batch(encoded.iter().map(|e| e.as_slice()))?;

        let mut directory = HashMap::with_capacity(sorted.len());
        let entries: Vec<(u32, u64, _)> = sorted
            .iter()
            .enumerate()
            .map(|(pos, r)| {
                directory.insert(r.id, RecordId(pos as u64));
                (r.key, pos as u64, r.digest(alg))
            })
            .collect();
        let tree = MbTree::bulk_load(store.clone(), alg, &entries)?;
        let signature = signer.sign(&tree.root_digest()?);

        Ok(TomSystem {
            store,
            heap,
            tree,
            directory,
            signer,
            verifier,
            signature,
            alg,
            cost_model,
        })
    }

    /// Builds a TOM deployment on a fresh in-memory store.
    pub fn build_in_memory(
        dataset: &Dataset,
        alg: HashAlgorithm,
        signer: S,
        verifier: V,
    ) -> StorageResult<Self> {
        Self::build(
            MemPager::new_shared(),
            dataset,
            alg,
            CostModel::paper(),
            signer,
            verifier,
        )
    }

    /// The MB-Tree (exposed for experiments).
    pub fn tree(&self) -> &MbTree {
        &self.tree
    }

    /// The data owner's current signature over the root digest.
    pub fn signature(&self) -> &SignatureBytes {
        &self.signature
    }

    /// The I/O counters of the SP's store (for batch-level accounting in the
    /// concurrent engine).
    pub fn store_stats(&self) -> std::sync::Arc<sae_storage::IoStats> {
        self.store.stats()
    }

    /// Runs one query honestly and verifies it.
    pub fn query(&self, q: &RangeQuery) -> StorageResult<TomQueryOutcome> {
        self.query_with_tamper(q, TamperStrategy::Honest, 0)
    }

    /// Runs one query with the SP applying the given tampering strategy.
    pub fn query_with_tamper(
        &self,
        q: &RangeQuery,
        tamper: TamperStrategy,
        seed: u64,
    ) -> StorageResult<TomQueryOutcome> {
        // --- Service provider: result + VO.
        let before = self.store.stats().snapshot();
        let positions = self.tree.range_record_ids(q)?;
        let mut honest = Vec::with_capacity(positions.len());
        let mut i = 0;
        while i < positions.len() {
            let mut run = 1;
            while i + run < positions.len() && positions[i + run] == positions[i] + run as u64 {
                run += 1;
            }
            honest.extend(self.heap.get_range(RecordId(positions[i]), run as u64)?);
            i += run;
        }
        let vo = self.tree.generate_vo(
            q,
            |pos| {
                self.heap
                    .get(RecordId(pos))
                    // analyzer:allow(no-unwrap-in-lib, generate_vo's boundary callback is infallible by signature and the positions come from the live tree)
                    .expect("boundary record present in the heap")
            },
            self.signature.clone(),
        )?;
        let sp_delta = self.store.stats().snapshot().delta_since(&before);

        let records = tamper.apply_sized(&honest, q, seed, self.heap.record_len());

        // --- Client: re-construct the root digest and check the signature.
        let start = Instant::now();
        let verified = vo.verify(q, &records, &self.verifier, self.alg).is_ok();
        let client_ms = start.elapsed().as_secs_f64() * 1000.0;

        Ok(TomQueryOutcome {
            metrics: QueryMetrics {
                result_cardinality: records.len() as u64,
                sp_node_accesses: sp_delta.node_accesses(),
                sp_charged_ms: self.cost_model.charge_ms(&sp_delta),
                te_node_accesses: 0,
                te_charged_ms: 0.0,
                auth_bytes: vo.size_bytes() as u64,
                client_verify_ms: client_ms,
                verified,
            },
            records,
            vo,
        })
    }

    /// Applies an insertion from the data owner: the SP updates the MB-Tree
    /// and the DO re-signs the new root digest.
    pub fn insert_record(&mut self, record: &Record) -> StorageResult<()> {
        let pos = self.heap.append(&record.encode())?;
        self.directory.insert(record.id, pos);
        self.tree
            .insert(record.key, pos.0, record.digest(self.alg))?;
        self.signature = self.signer.sign(&self.tree.root_digest()?);
        Ok(())
    }

    /// Applies a deletion from the data owner (and re-signs).
    pub fn delete_record(&mut self, id: u64, key: u32) -> StorageResult<bool> {
        let Some(pos) = self.directory.remove(&id) else {
            return Ok(false);
        };
        let removed = self.tree.delete(key, pos.0)?;
        self.signature = self.signer.sign(&self.tree.root_digest()?);
        Ok(removed)
    }

    /// Per-party storage consumption (Fig. 8). TOM has no trusted entity.
    pub fn storage_breakdown(&self) -> StorageBreakdown {
        StorageBreakdown {
            sp_dataset_bytes: self.heap.storage_bytes(),
            sp_index_bytes: self.tree.storage_bytes(),
            te_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_crypto::MacSigner;
    use sae_workload::{DatasetSpec, KeyDistribution};

    fn small_dataset(n: usize) -> Dataset {
        DatasetSpec {
            cardinality: n,
            distribution: KeyDistribution::Uniform { domain: 50_000 },
            record_size: 200,
            seed: 77,
        }
        .generate()
    }

    fn build(n: usize) -> (Dataset, TomSystem<MacSigner, MacSigner>) {
        let ds = small_dataset(n);
        let signer = MacSigner::new(b"do-signing-key".to_vec());
        let system =
            TomSystem::build_in_memory(&ds, HashAlgorithm::Sha1, signer.clone(), signer).unwrap();
        (ds, system)
    }

    #[test]
    fn honest_queries_verify_and_match_the_oracle() {
        let (ds, system) = build(3_000);
        for (lo, hi) in [
            (0u32, 50_000u32),
            (10_000, 12_000),
            (49_500, 50_000),
            (3, 3),
        ] {
            let q = RangeQuery::new(lo, hi);
            let outcome = system.query(&q).unwrap();
            assert!(outcome.metrics.verified, "query [{lo}, {hi}]");
            assert_eq!(outcome.records.len(), ds.query_cardinality(&q));
            assert!(outcome.metrics.auth_bytes >= 20);
        }
    }

    #[test]
    fn tampered_results_are_rejected() {
        let (ds, system) = build(3_000);
        let q = RangeQuery::new(20_000, 24_000);
        assert!(ds.query_cardinality(&q) > 5);
        for strategy in [
            TamperStrategy::DropRecords { count: 1 },
            TamperStrategy::InjectRecords { count: 1 },
            TamperStrategy::ModifyRecords { count: 1 },
            TamperStrategy::SubstituteResult { count: 10 },
            TamperStrategy::DuplicatePair { count: 1 },
            TamperStrategy::DuplicateExisting { count: 1 },
        ] {
            let outcome = system.query_with_tamper(&q, strategy, 5).unwrap();
            assert!(!outcome.metrics.verified, "{strategy:?} went undetected");
        }
    }

    /// Companion to the SAE duplicate-injection regression: the TOM client
    /// reconstructs the MB-Tree root digest, so even-multiplicity duplicates
    /// do not cancel — but the rejection must be exercised explicitly.
    #[test]
    fn duplicate_injection_is_rejected_by_the_vo_client() {
        let (ds, system) = build(2_000);
        let q = RangeQuery::new(10_000, 14_000);
        assert!(ds.query_cardinality(&q) > 2);
        for strategy in [
            TamperStrategy::DuplicatePair { count: 1 },
            TamperStrategy::DuplicateExisting { count: 2 },
        ] {
            let outcome = system.query_with_tamper(&q, strategy, 21).unwrap();
            assert!(outcome.records.len() > ds.query_cardinality(&q));
            assert!(!outcome.metrics.verified, "{strategy:?} went undetected");
        }
    }

    #[test]
    fn updates_re_sign_the_root_and_stay_verifiable() {
        let (_, mut system) = build(1_000);
        let old_signature = system.signature().clone();

        let record = Record::with_size(1_000_000, 123, 200);
        system.insert_record(&record).unwrap();
        assert_ne!(system.signature(), &old_signature);

        let q = RangeQuery::new(123, 123);
        let outcome = system.query(&q).unwrap();
        assert!(outcome.metrics.verified);
        assert!(outcome
            .records
            .iter()
            .any(|r| Record::decode(r).unwrap().id == 1_000_000));

        assert!(system.delete_record(1_000_000, 123).unwrap());
        let outcome = system.query(&q).unwrap();
        assert!(outcome.metrics.verified);
        assert!(!outcome
            .records
            .iter()
            .any(|r| Record::decode(r).unwrap().id == 1_000_000));
    }

    #[test]
    fn vo_is_orders_of_magnitude_larger_than_the_sae_token() {
        let (_, system) = build(5_000);
        let q = RangeQuery::new(10_000, 10_500);
        let outcome = system.query(&q).unwrap();
        assert!(outcome.metrics.verified);
        assert!(outcome.metrics.auth_bytes > 100 * 20);
    }

    #[test]
    fn storage_has_no_te_component() {
        let (_, system) = build(2_000);
        let s = system.storage_breakdown();
        assert_eq!(s.te_bytes, 0);
        assert!(s.sp_dataset_bytes > s.sp_index_bytes);
    }
}
