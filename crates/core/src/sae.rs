//! The SAE deployment: DO → (SP, TE) → client.
//!
//! Under SAE the service provider runs a *conventional* DBMS — a heap file
//! holding the outsourced records plus a plain B⁺-Tree — and returns only the
//! query result. All authentication work is outsourced to the trusted entity,
//! which keeps one `(id, key, digest)` tuple per record in an XB-Tree and
//! answers each verification request with the 20-byte token
//! `VT = ⊕ h(r)` over the records qualifying the query. The client hashes the
//! records it received from the SP, XORs the digests and compares against the
//! VT (§II).

use crate::metrics::{QueryMetrics, StorageBreakdown};
use crate::tamper::TamperStrategy;
use sae_btree::BPlusTree;
use sae_crypto::{Digest, HashAlgorithm, DIGEST_LEN};
use sae_storage::{CostModel, HeapFile, MemPager, RecordId, SharedPageStore, StorageResult};
use sae_workload::{Dataset, RangeQuery, Record, TeTuple};
use sae_xbtree::{TupleStore, XbTree};
use std::collections::HashMap;
use std::time::Instant;

/// The service provider under SAE: a conventional DBMS with no authentication
/// structures whatsoever.
pub struct SaeServiceProvider {
    store: SharedPageStore,
    heap: HeapFile,
    index: BPlusTree,
    /// Maps a record's logical id to its position in the heap file.
    directory: HashMap<u64, RecordId>,
}

impl SaeServiceProvider {
    /// Ingests the outsourced dataset: the records are stored key-clustered in
    /// a heap file and indexed by a bulk-loaded B⁺-Tree whose values are heap
    /// positions.
    pub fn build(store: SharedPageStore, dataset: &Dataset) -> StorageResult<Self> {
        let sorted = dataset.sorted_by_key();
        let mut heap = HeapFile::create(store.clone(), dataset.spec.record_size)?;
        let encoded: Vec<Vec<u8>> = sorted.iter().map(|r| r.encode()).collect();
        heap.append_batch(encoded.iter().map(|e| e.as_slice()))?;

        let mut directory = HashMap::with_capacity(sorted.len());
        let entries: Vec<(u32, u64)> = sorted
            .iter()
            .enumerate()
            .map(|(pos, r)| {
                directory.insert(r.id, RecordId(pos as u64));
                (r.key, pos as u64)
            })
            .collect();
        let index = BPlusTree::bulk_load(store.clone(), &entries)?;
        Ok(SaeServiceProvider {
            store,
            heap,
            index,
            directory,
        })
    }

    /// Answers a range query: index traversal, then retrieval of the matching
    /// records from the dataset file. Returns the encoded records in key
    /// order.
    pub fn query(&self, q: &RangeQuery) -> StorageResult<Vec<Vec<u8>>> {
        let positions = self.index.range_record_ids(q)?;
        let mut out = Vec::with_capacity(positions.len());
        // The heap is key-clustered for the initial load, so contiguous runs
        // can be fetched page-by-page; updates may break contiguity, in which
        // case records are fetched individually.
        let mut i = 0;
        while i < positions.len() {
            let mut run = 1;
            while i + run < positions.len() && positions[i + run] == positions[i] + run as u64 {
                run += 1;
            }
            out.extend(self.heap.get_range(RecordId(positions[i]), run as u64)?);
            i += run;
        }
        Ok(out)
    }

    /// Applies an insertion coming from the data owner.
    pub fn insert(&mut self, record: &Record) -> StorageResult<()> {
        let pos = self.heap.append(&record.encode())?;
        self.directory.insert(record.id, pos);
        self.index.insert(record.key, pos.0)
    }

    /// Applies a deletion coming from the data owner. The heap slot is left in
    /// place (tombstoned by removing it from the index and directory).
    pub fn delete(&mut self, id: u64, key: u32) -> StorageResult<bool> {
        let Some(pos) = self.directory.remove(&id) else {
            return Ok(false);
        };
        self.index.delete(key, pos.0)
    }

    /// The shared page store (for I/O accounting).
    pub fn store(&self) -> &SharedPageStore {
        &self.store
    }

    /// The B⁺-Tree index (exposed for experiments/ablations).
    pub fn index(&self) -> &BPlusTree {
        &self.index
    }

    /// Storage consumed by the dataset file.
    pub fn dataset_bytes(&self) -> u64 {
        self.heap.storage_bytes()
    }

    /// Storage consumed by the index.
    pub fn index_bytes(&self) -> u64 {
        self.index.storage_bytes()
    }
}

/// How the trusted entity computes verification tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TeMode {
    /// Use the XB-Tree (the paper's design).
    XbTree,
    /// Sequentially scan the tuple set (the baseline of ablation E5).
    SequentialScan,
}

/// The trusted entity: reduced tuples plus the XB-Tree.
pub struct TrustedEntity {
    store: SharedPageStore,
    tree: XbTree,
    scan: Option<TupleStore>,
    mode: TeMode,
    alg: HashAlgorithm,
}

impl TrustedEntity {
    /// Ingests the reduced tuples `T` derived from the outsourced dataset.
    pub fn build(
        store: SharedPageStore,
        dataset: &Dataset,
        alg: HashAlgorithm,
        mode: TeMode,
    ) -> StorageResult<Self> {
        let mut tuples: Vec<TeTuple> = dataset.iter().map(|r| r.te_tuple(alg)).collect();
        tuples.sort_by_key(|t| (t.key, t.id));
        let tree = XbTree::bulk_load(store.clone(), &tuples)?;
        let scan = match mode {
            TeMode::SequentialScan => Some(TupleStore::build(store.clone(), &tuples)?),
            TeMode::XbTree => None,
        };
        Ok(TrustedEntity {
            store,
            tree,
            scan,
            mode,
            alg,
        })
    }

    /// Produces the verification token for a query.
    pub fn generate_vt(&self, q: &RangeQuery) -> StorageResult<Digest> {
        match (self.mode, &self.scan) {
            (TeMode::SequentialScan, Some(scan)) => scan.generate_vt_scan(q),
            _ => self.tree.generate_vt(q),
        }
    }

    /// Applies an insertion coming from the data owner.
    pub fn insert(&mut self, record: &Record) -> StorageResult<()> {
        self.tree.insert(record.te_tuple(self.alg))
    }

    /// Applies a deletion coming from the data owner.
    pub fn delete(&mut self, id: u64, key: u32) -> StorageResult<bool> {
        self.tree.delete(key, id)
    }

    /// The shared page store (for I/O accounting).
    pub fn store(&self) -> &SharedPageStore {
        &self.store
    }

    /// The XB-Tree (exposed for experiments/ablations).
    pub fn tree(&self) -> &XbTree {
        &self.tree
    }

    /// Storage consumed by the TE (XB-Tree, plus the flat tuple set when the
    /// sequential-scan mode keeps one).
    pub fn storage_bytes(&self) -> u64 {
        self.tree.storage_bytes() + self.scan.as_ref().map_or(0, TupleStore::storage_bytes)
    }
}

/// The SAE client-side verification: hash every received record, XOR the
/// digests and compare against the token supplied by the TE.
pub struct SaeClient {
    alg: HashAlgorithm,
}

impl SaeClient {
    /// Creates a client using the system-wide hash algorithm.
    pub fn new(alg: HashAlgorithm) -> Self {
        SaeClient { alg }
    }

    /// Verifies a claimed result against a verification token. Returns
    /// `(accepted, wall-clock milliseconds spent)`.
    pub fn verify(&self, result_records: &[Vec<u8>], vt: &Digest) -> (bool, f64) {
        let start = Instant::now();
        let mut acc = Digest::ZERO;
        for record in result_records {
            acc ^= self.alg.hash(record);
        }
        let ok = acc == *vt;
        (ok, start.elapsed().as_secs_f64() * 1000.0)
    }
}

/// Everything a query run produces under SAE.
#[derive(Clone, Debug)]
pub struct SaeQueryOutcome {
    /// The (possibly tampered) result the SP returned, encoded records.
    pub records: Vec<Vec<u8>>,
    /// The verification token from the TE.
    pub vt: Digest,
    /// Cost accounting for this query.
    pub metrics: QueryMetrics,
}

/// A complete SAE deployment over in-memory or file-backed page stores.
pub struct SaeSystem {
    sp: SaeServiceProvider,
    te: TrustedEntity,
    client: SaeClient,
    alg: HashAlgorithm,
    cost_model: CostModel,
}

impl SaeSystem {
    /// Builds a deployment on fresh in-memory stores (one per party).
    pub fn build_in_memory(dataset: &Dataset, alg: HashAlgorithm) -> StorageResult<Self> {
        Self::build(
            MemPager::new_shared(),
            MemPager::new_shared(),
            dataset,
            alg,
            CostModel::paper(),
            TeMode::XbTree,
        )
    }

    /// Builds a deployment on explicit page stores.
    pub fn build(
        sp_store: SharedPageStore,
        te_store: SharedPageStore,
        dataset: &Dataset,
        alg: HashAlgorithm,
        cost_model: CostModel,
        te_mode: TeMode,
    ) -> StorageResult<Self> {
        let sp = SaeServiceProvider::build(sp_store, dataset)?;
        let te = TrustedEntity::build(te_store, dataset, alg, te_mode)?;
        Ok(SaeSystem {
            sp,
            te,
            client: SaeClient::new(alg),
            alg,
            cost_model,
        })
    }

    /// The hash algorithm shared by all parties.
    pub fn hash_algorithm(&self) -> HashAlgorithm {
        self.alg
    }

    /// Access to the SP (for experiments).
    pub fn sp(&self) -> &SaeServiceProvider {
        &self.sp
    }

    /// Access to the TE (for experiments).
    pub fn te(&self) -> &TrustedEntity {
        &self.te
    }

    /// Runs one query honestly and verifies it.
    pub fn query(&self, q: &RangeQuery) -> StorageResult<SaeQueryOutcome> {
        self.query_with_tamper(q, TamperStrategy::Honest, 0)
    }

    /// Runs one query with the SP applying the given tampering strategy before
    /// returning the result.
    pub fn query_with_tamper(
        &self,
        q: &RangeQuery,
        tamper: TamperStrategy,
        seed: u64,
    ) -> StorageResult<SaeQueryOutcome> {
        // --- Service provider: compute the result.
        let sp_before = self.sp.store().stats().snapshot();
        let honest = self.sp.query(q)?;
        let sp_delta = self.sp.store().stats().snapshot().delta_since(&sp_before);

        let records = tamper.apply(&honest, q, seed);

        // --- Trusted entity: compute the token (independent of the SP).
        let te_before = self.te.store().stats().snapshot();
        let vt = self.te.generate_vt(q)?;
        let te_delta = self.te.store().stats().snapshot().delta_since(&te_before);

        // --- Client: verify.
        let (verified, client_ms) = self.client.verify(&records, &vt);

        Ok(SaeQueryOutcome {
            metrics: QueryMetrics {
                result_cardinality: records.len() as u64,
                sp_node_accesses: sp_delta.node_accesses(),
                sp_charged_ms: self.cost_model.charge_ms(&sp_delta),
                te_node_accesses: te_delta.node_accesses(),
                te_charged_ms: self.cost_model.charge_ms(&te_delta),
                auth_bytes: DIGEST_LEN as u64,
                client_verify_ms: client_ms,
                verified,
            },
            records,
            vt,
        })
    }

    /// Propagates an insertion from the data owner to both the SP and the TE.
    pub fn insert_record(&mut self, record: &Record) -> StorageResult<()> {
        self.sp.insert(record)?;
        self.te.insert(record)
    }

    /// Propagates a deletion from the data owner to both the SP and the TE.
    pub fn delete_record(&mut self, id: u64, key: u32) -> StorageResult<bool> {
        let sp_removed = self.sp.delete(id, key)?;
        let te_removed = self.te.delete(id, key)?;
        Ok(sp_removed && te_removed)
    }

    /// Per-party storage consumption (Fig. 8).
    pub fn storage_breakdown(&self) -> StorageBreakdown {
        StorageBreakdown {
            sp_dataset_bytes: self.sp.dataset_bytes(),
            sp_index_bytes: self.sp.index_bytes(),
            te_bytes: self.te.storage_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_workload::{DatasetSpec, KeyDistribution};

    fn small_dataset(n: usize) -> Dataset {
        DatasetSpec {
            cardinality: n,
            distribution: KeyDistribution::Uniform { domain: 50_000 },
            record_size: 200,
            seed: 21,
        }
        .generate()
    }

    #[test]
    fn honest_queries_verify_and_match_the_oracle() {
        let ds = small_dataset(4_000);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        for (lo, hi) in [
            (0u32, 50_000u32),
            (10_000, 12_000),
            (49_000, 50_000),
            (7, 7),
        ] {
            let q = RangeQuery::new(lo, hi);
            let outcome = system.query(&q).unwrap();
            assert!(outcome.metrics.verified, "query [{lo}, {hi}]");
            assert_eq!(
                outcome.records.len(),
                ds.query_cardinality(&q),
                "query [{lo}, {hi}]"
            );
            // Every returned record decodes and satisfies the query.
            for bytes in &outcome.records {
                let r = Record::decode(bytes).unwrap();
                assert!(q.contains(r.key));
            }
            assert_eq!(outcome.metrics.auth_bytes, 20);
        }
    }

    #[test]
    fn tampered_results_are_rejected() {
        let ds = small_dataset(3_000);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let q = RangeQuery::new(20_000, 24_000);
        assert!(ds.query_cardinality(&q) > 5);

        for strategy in [
            TamperStrategy::DropRecords { count: 1 },
            TamperStrategy::InjectRecords { count: 1 },
            TamperStrategy::ModifyRecords { count: 1 },
            TamperStrategy::SubstituteResult { count: 10 },
        ] {
            let outcome = system.query_with_tamper(&q, strategy, 99).unwrap();
            assert!(!outcome.metrics.verified, "{strategy:?} went undetected");
        }
    }

    #[test]
    fn empty_results_verify_with_zero_token() {
        let ds = small_dataset(500);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let q = RangeQuery::new(60_000, 70_000); // outside the key domain
        let outcome = system.query(&q).unwrap();
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.vt, Digest::ZERO);
        assert!(outcome.metrics.verified);
    }

    #[test]
    fn te_cost_is_much_smaller_than_sp_cost() {
        let ds = small_dataset(5_000);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let q = RangeQuery::new(0, 25_000); // half the domain
        let outcome = system.query(&q).unwrap();
        assert!(outcome.metrics.sp_node_accesses > 5 * outcome.metrics.te_node_accesses);
        assert!(outcome.metrics.sp_charged_ms > outcome.metrics.te_charged_ms);
    }

    #[test]
    fn updates_propagate_to_both_parties() {
        let ds = small_dataset(1_000);
        let mut system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();

        // Insert a fresh record and query for it.
        let new_record = Record::with_size(1_000_000, 123, 200);
        system.insert_record(&new_record).unwrap();
        let q = RangeQuery::new(123, 123);
        let outcome = system.query(&q).unwrap();
        assert!(outcome.metrics.verified);
        assert!(outcome
            .records
            .iter()
            .any(|r| Record::decode(r).unwrap().id == 1_000_000));

        // Delete it again.
        assert!(system.delete_record(1_000_000, 123).unwrap());
        let outcome = system.query(&q).unwrap();
        assert!(outcome.metrics.verified);
        assert!(!outcome
            .records
            .iter()
            .any(|r| Record::decode(r).unwrap().id == 1_000_000));

        // Deleting a non-existent record reports false.
        assert!(!system.delete_record(1_000_000, 123).unwrap());
    }

    #[test]
    fn sequential_scan_mode_yields_the_same_tokens_at_higher_cost() {
        let ds = small_dataset(3_000);
        let tree_mode = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let scan_mode = SaeSystem::build(
            MemPager::new_shared(),
            MemPager::new_shared(),
            &ds,
            HashAlgorithm::Sha1,
            CostModel::paper(),
            TeMode::SequentialScan,
        )
        .unwrap();
        let q = RangeQuery::new(1_000, 2_000);
        let a = tree_mode.query(&q).unwrap();
        let b = scan_mode.query(&q).unwrap();
        assert_eq!(a.vt, b.vt);
        assert!(a.metrics.verified && b.metrics.verified);
        assert!(b.metrics.te_node_accesses > a.metrics.te_node_accesses);
    }

    #[test]
    fn storage_breakdown_matches_figure_8_shape() {
        let ds = small_dataset(4_000);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let s = system.storage_breakdown();
        // The SP's storage is dominated by the dataset; the TE is a fraction.
        assert!(s.sp_dataset_bytes > s.sp_index_bytes);
        assert!(s.te_bytes < s.sp_total_bytes() / 2);
        assert!(s.te_bytes > 0);
    }
}
