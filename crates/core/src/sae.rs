//! The SAE deployment: DO → (SP, TE) → client.
//!
//! Under SAE the service provider runs a *conventional* DBMS — a heap file
//! holding the outsourced records plus a plain B⁺-Tree — and returns only the
//! query result. All authentication work is outsourced to the trusted entity,
//! which keeps one `(id, key, digest)` tuple per record in an XB-Tree and
//! answers each verification request with the 20-byte token
//! `VT = ⊕ h(r)` over the records qualifying the query. The client hashes the
//! records it received from the SP, XORs the digests and compares against the
//! VT (§II).

use crate::durable::{Durability, DurabilityPolicy};
use crate::metrics::{QueryMetrics, StorageBreakdown};
use crate::tamper::TamperStrategy;
use sae_btree::BPlusTree;
use sae_crypto::{Digest, HashAlgorithm, DIGEST_LEN};
use sae_storage::{
    CostModel, HeapFile, MemPager, PageId, RecordId, SharedPageStore, StorageError, StorageResult,
    TreeMeta,
};
use sae_workload::{Dataset, RangeQuery, Record, RecordKey, TeTuple};
use sae_xbtree::{TupleStore, XbTree};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::time::Instant;

/// Reads the `(id, key)` header of an encoded record in place, without
/// copying the payload. Returns `None` when `bytes` is too short to hold a
/// header — callers map that to their own corruption/verification error.
pub(crate) fn record_header(bytes: &[u8]) -> Option<(u64, u32)> {
    let id = bytes.get(0..8)?.try_into().ok()?;
    let key = bytes.get(8..12)?.try_into().ok()?;
    Some((u64::from_le_bytes(id), u32::from_le_bytes(key)))
}

/// The service provider under SAE: a conventional DBMS with no authentication
/// structures whatsoever.
pub struct SaeServiceProvider {
    store: SharedPageStore,
    heap: HeapFile,
    index: BPlusTree,
    /// Maps a record's logical id to its position in the heap file.
    directory: HashMap<u64, RecordId>,
}

impl SaeServiceProvider {
    /// Ingests the outsourced dataset: the records are stored key-clustered in
    /// a heap file and indexed by a bulk-loaded B⁺-Tree whose values are heap
    /// positions.
    pub fn build(store: SharedPageStore, dataset: &Dataset) -> StorageResult<Self> {
        let sorted = dataset.sorted_by_key();
        let mut heap = HeapFile::create(store.clone(), dataset.spec.record_size)?;
        let encoded: Vec<Vec<u8>> = sorted.iter().map(|r| r.encode()).collect();
        heap.append_batch(encoded.iter().map(|e| e.as_slice()))?;

        let mut directory = HashMap::with_capacity(sorted.len());
        let entries: Vec<(u32, u64)> = sorted
            .iter()
            .enumerate()
            .map(|(pos, r)| {
                directory.insert(r.id, RecordId(pos as u64));
                (r.key, pos as u64)
            })
            .collect();
        let index = BPlusTree::bulk_load(store.clone(), &entries)?;
        Ok(SaeServiceProvider {
            store,
            heap,
            index,
            directory,
        })
    }

    /// Reopens a service provider from its persisted state: the B⁺-Tree is
    /// reopened from its manifest meta, the heap file from its recovered
    /// page table, and the id directory is rebuilt by walking the *index*
    /// (never the original dataset) — tombstoned heap slots are not indexed,
    /// so they stay dead. A record id reachable from two index positions is
    /// reported as corruption.
    pub fn open(
        store: SharedPageStore,
        record_len: usize,
        heap_record_count: u64,
        heap_pages: Vec<PageId>,
        index_meta: TreeMeta,
    ) -> StorageResult<Self> {
        let index = BPlusTree::open(store.clone(), index_meta)?;
        let heap = HeapFile::open(store.clone(), record_len, heap_record_count, heap_pages)?;
        let positions = index.range_record_ids(&RangeQuery::new(0, RecordKey::MAX))?;
        if positions.len() as u64 != index.len() {
            return Err(StorageError::Corrupted(format!(
                "recovered index claims {} entries but a full scan found {}",
                index.len(),
                positions.len()
            )));
        }
        let mut directory = HashMap::with_capacity(positions.len());
        for pos in positions {
            let bytes = heap.get(RecordId(pos))?;
            let Some((id, _)) = record_header(&bytes) else {
                return Err(StorageError::Corrupted(format!(
                    "heap slot {pos} too short to hold a record header"
                )));
            };
            if directory.insert(id, RecordId(pos)).is_some() {
                return Err(StorageError::Corrupted(format!(
                    "record id {id} is reachable from two index positions in the recovered \
                     deployment"
                )));
            }
        }
        Ok(SaeServiceProvider {
            store,
            heap,
            index,
            directory,
        })
    }

    /// Answers a range query: index traversal, then retrieval of the matching
    /// records from the dataset file. Returns the encoded records in key
    /// order.
    pub fn query(&self, q: &RangeQuery) -> StorageResult<Vec<Vec<u8>>> {
        let positions = self.index.range_record_ids(q)?;
        let mut out = Vec::with_capacity(positions.len());
        // The heap is key-clustered for the initial load, so contiguous runs
        // can be fetched page-by-page; updates may break contiguity, in which
        // case records are fetched individually.
        let mut i = 0;
        while i < positions.len() {
            let mut run = 1;
            while i + run < positions.len() && positions[i + run] == positions[i] + run as u64 {
                run += 1;
            }
            out.extend(self.heap.get_range(RecordId(positions[i]), run as u64)?);
            i += run;
        }
        Ok(out)
    }

    /// Applies an insertion coming from the data owner.
    ///
    /// Duplicate ids are rejected: silently overwriting the directory entry
    /// would leave the old heap slot reachable through the index while the
    /// directory points elsewhere, silently corrupting later deletions.
    pub fn insert(&mut self, record: &Record) -> StorageResult<()> {
        if self.directory.contains_key(&record.id) {
            return Err(StorageError::DuplicateRecordId(record.id));
        }
        let pos = self.heap.append(&record.encode())?;
        self.directory.insert(record.id, pos);
        self.index.insert(record.key, pos.0)
    }

    /// Applies a deletion coming from the data owner. The heap slot is left in
    /// place (tombstoned by removing it from the index and directory).
    pub fn delete(&mut self, id: u64, key: u32) -> StorageResult<bool> {
        Ok(self.take(id, key)?.is_some())
    }

    /// Removes a record from the directory and index, returning its heap
    /// position so the caller can roll the deletion back with
    /// [`SaeServiceProvider::restore`]. Returns `Ok(None)` when the record is
    /// unknown (nothing changed).
    pub fn take(&mut self, id: u64, key: u32) -> StorageResult<Option<RecordId>> {
        let Some(pos) = self.directory.remove(&id) else {
            return Ok(None);
        };
        match self.index.delete(key, pos.0) {
            Ok(true) => Ok(Some(pos)),
            // The directory and the index disagreed (or the index errored):
            // undo the directory removal so the SP stays self-consistent.
            Ok(false) => {
                self.directory.insert(id, pos);
                Err(StorageError::Desync(format!(
                    "SP directory maps record {id} to heap slot {} but the index has no entry \
                     for key {key}",
                    pos.0
                )))
            }
            Err(e) => {
                self.directory.insert(id, pos);
                Err(e)
            }
        }
    }

    /// Undoes a [`SaeServiceProvider::take`]: re-links the (still present)
    /// heap slot into the directory and index.
    pub fn restore(&mut self, id: u64, key: u32, pos: RecordId) -> StorageResult<()> {
        self.directory.insert(id, pos);
        self.index.insert(key, pos.0)
    }

    /// The fixed encoded record length of the outsourced dataset.
    pub fn record_len(&self) -> usize {
        self.heap.record_len()
    }

    /// The shared page store (for I/O accounting).
    pub fn store(&self) -> &SharedPageStore {
        &self.store
    }

    /// The B⁺-Tree index (exposed for experiments/ablations).
    pub fn index(&self) -> &BPlusTree {
        &self.index
    }

    /// The heap file holding the outsourced records (exposed so durable
    /// deployments can persist its geometry).
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// The ids of every live record this SP serves.
    pub fn record_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.directory.keys().copied()
    }

    /// Storage consumed by the dataset file.
    pub fn dataset_bytes(&self) -> u64 {
        self.heap.storage_bytes()
    }

    /// Storage consumed by the index.
    pub fn index_bytes(&self) -> u64 {
        self.index.storage_bytes()
    }
}

/// How the trusted entity computes verification tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TeMode {
    /// Use the XB-Tree (the paper's design).
    XbTree,
    /// Sequentially scan the tuple set (the baseline of ablation E5).
    SequentialScan,
}

/// The trusted entity: reduced tuples plus the XB-Tree.
pub struct TrustedEntity {
    store: SharedPageStore,
    tree: XbTree,
    scan: Option<TupleStore>,
    mode: TeMode,
    alg: HashAlgorithm,
}

impl TrustedEntity {
    /// Ingests the reduced tuples `T` derived from the outsourced dataset.
    pub fn build(
        store: SharedPageStore,
        dataset: &Dataset,
        alg: HashAlgorithm,
        mode: TeMode,
    ) -> StorageResult<Self> {
        let mut tuples: Vec<TeTuple> = dataset.iter().map(|r| r.te_tuple(alg)).collect();
        tuples.sort_by_key(|t| (t.key, t.id));
        let tree = XbTree::bulk_load(store.clone(), &tuples)?;
        let scan = match mode {
            TeMode::SequentialScan => Some(TupleStore::build(store.clone(), &tuples)?),
            TeMode::XbTree => None,
        };
        Ok(TrustedEntity {
            store,
            tree,
            scan,
            mode,
            alg,
        })
    }

    /// Reopens a trusted entity from its persisted XB-Tree root and checks
    /// the tree's recomputed total XOR against the digest published in the
    /// manifest at the last commit. Any divergence — a tampered page, a
    /// file substituted wholesale, a root pointing at stale pages — fails
    /// here with a typed error before the TE ever issues a token.
    pub fn open(
        store: SharedPageStore,
        meta: TreeMeta,
        alg: HashAlgorithm,
        published: Digest,
    ) -> StorageResult<Self> {
        let tree = XbTree::open(store.clone(), meta)?;
        let actual = tree.total_xor()?;
        if actual != published {
            return Err(StorageError::Corrupted(format!(
                "trusted entity digest mismatch: the reopened XB-Tree folds to {} but the \
                 manifest published {}",
                actual.to_hex(),
                published.to_hex()
            )));
        }
        Ok(TrustedEntity {
            store,
            tree,
            scan: None,
            mode: TeMode::XbTree,
            alg,
        })
    }

    /// Produces the verification token for a query.
    pub fn generate_vt(&self, q: &RangeQuery) -> StorageResult<Digest> {
        match (self.mode, &self.scan) {
            (TeMode::SequentialScan, Some(scan)) => scan.generate_vt_scan(q),
            _ => self.tree.generate_vt(q),
        }
    }

    /// Applies an insertion coming from the data owner.
    pub fn insert(&mut self, record: &Record) -> StorageResult<()> {
        self.tree.insert(record.te_tuple(self.alg))
    }

    /// Applies a deletion coming from the data owner.
    pub fn delete(&mut self, id: u64, key: u32) -> StorageResult<bool> {
        self.tree.delete(key, id)
    }

    /// Removes the tuple for `(id, key)`, returning it so the caller can roll
    /// the deletion back with [`TrustedEntity::restore`]. `Ok(None)` when the
    /// TE holds no such tuple.
    pub fn take(&mut self, id: u64, key: u32) -> StorageResult<Option<TeTuple>> {
        Ok(self
            .tree
            .take(key, id)?
            .map(|digest| TeTuple { id, key, digest }))
    }

    /// Undoes a [`TrustedEntity::take`] by re-inserting the removed tuple.
    pub fn restore(&mut self, tuple: TeTuple) -> StorageResult<()> {
        self.tree.insert(tuple)
    }

    /// The shared page store (for I/O accounting).
    pub fn store(&self) -> &SharedPageStore {
        &self.store
    }

    /// The XB-Tree (exposed for experiments/ablations).
    pub fn tree(&self) -> &XbTree {
        &self.tree
    }

    /// Storage consumed by the TE (XB-Tree, plus the flat tuple set when the
    /// sequential-scan mode keeps one).
    pub fn storage_bytes(&self) -> u64 {
        self.tree.storage_bytes() + self.scan.as_ref().map_or(0, TupleStore::storage_bytes)
    }
}

/// Why the SAE client rejected a claimed result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SaeVerifyError {
    /// A result record could not be decoded as a record of the outsourced
    /// relation.
    BadRecordEncoding,
    /// A record's encoded length does not match the dataset's record format.
    WrongRecordLength {
        /// The fixed length the data owner published.
        expected: usize,
        /// The length of the offending record.
        actual: usize,
    },
    /// Two result records share a record id. Ids are unique in the outsourced
    /// relation, so a duplicate is always fabricated — and an even number of
    /// copies would cancel out of a bare XOR fold (`h(r) ⊕ h(r) = 0`).
    DuplicateRecordId(u64),
    /// A result record's key falls outside `[q.lower, q.upper]`.
    KeyOutOfRange,
    /// Result records are not sorted by key.
    NotSorted,
    /// The XOR of the record digests does not equal the verification token.
    TokenMismatch,
}

impl std::fmt::Display for SaeVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaeVerifyError::BadRecordEncoding => write!(f, "result record failed to decode"),
            SaeVerifyError::WrongRecordLength { expected, actual } => write!(
                f,
                "record length mismatch: expected {expected} bytes, got {actual}"
            ),
            SaeVerifyError::DuplicateRecordId(id) => {
                write!(f, "record id {id} appears more than once in the result")
            }
            SaeVerifyError::KeyOutOfRange => write!(f, "result record outside the query range"),
            SaeVerifyError::NotSorted => write!(f, "result records not sorted by key"),
            SaeVerifyError::TokenMismatch => {
                write!(f, "digest XOR does not match the verification token")
            }
        }
    }
}

impl std::error::Error for SaeVerifyError {}

/// The SAE client-side verification.
///
/// The TE's token is the XOR of the digests of the records qualifying the
/// query, so before comparing against it the client must enforce the result
/// structure that makes the XOR fold sound: the outsourced relation has unique
/// record ids, the SP returns records in key order within `[q.lower,
/// q.upper]`, and every record uses the fixed encoded length the data owner
/// published. Without those checks an SP that injects the same fabricated
/// record an even number of times passes a bare XOR comparison, because
/// `h(r) ⊕ h(r) = 0`.
pub struct SaeClient {
    alg: HashAlgorithm,
    /// The fixed encoded record length of the outsourced relation, when the
    /// client knows it (published by the data owner alongside the schema).
    record_len: Option<usize>,
}

impl SaeClient {
    /// Creates a client using the system-wide hash algorithm. The record
    /// length check degrades to "all records equally long" until
    /// [`SaeClient::with_record_len`] supplies the published format.
    pub fn new(alg: HashAlgorithm) -> Self {
        SaeClient {
            alg,
            record_len: None,
        }
    }

    /// Creates a client that also knows the published fixed record length.
    pub fn with_record_len(alg: HashAlgorithm, record_len: usize) -> Self {
        SaeClient {
            alg,
            record_len: Some(record_len),
        }
    }

    /// The hash algorithm this client folds digests with — part of the
    /// published deployment parameters a remote client must be configured
    /// with (see `sae-net`).
    pub fn algorithm(&self) -> HashAlgorithm {
        self.alg
    }

    /// The published fixed record length, when known.
    pub fn record_len(&self) -> Option<usize> {
        self.record_len
    }

    /// Verifies a claimed result against a verification token. Returns
    /// `(accepted, wall-clock milliseconds spent)`.
    pub fn verify(&self, q: &RangeQuery, result_records: &[Vec<u8>], vt: &Digest) -> (bool, f64) {
        let (outcome, ms) = self.verify_detailed(q, result_records, vt);
        (outcome.is_ok(), ms)
    }

    /// Verifies a claimed result, reporting *why* a tampered result was
    /// rejected. Returns the verdict and the wall-clock milliseconds spent.
    pub fn verify_detailed(
        &self,
        q: &RangeQuery,
        result_records: &[Vec<u8>],
        vt: &Digest,
    ) -> (Result<(), SaeVerifyError>, f64) {
        let start = Instant::now();
        let outcome = self.check(q, result_records, vt);
        (outcome, start.elapsed().as_secs_f64() * 1000.0)
    }

    fn check(
        &self,
        q: &RangeQuery,
        result_records: &[Vec<u8>],
        vt: &Digest,
    ) -> Result<(), SaeVerifyError> {
        // ---- 1. Structural checks: the result must look like a contiguous
        // slice of the outsourced relation before the XOR fold means anything.
        let expected_len = self
            .record_len
            .or_else(|| result_records.first().map(Vec::len));
        let mut seen_ids = HashSet::with_capacity(result_records.len());
        let mut prev_key: Option<u32> = None;
        for bytes in result_records {
            if let Some(expected) = expected_len {
                if bytes.len() != expected {
                    return Err(SaeVerifyError::WrongRecordLength {
                        expected,
                        actual: bytes.len(),
                    });
                }
            }
            // Read the id/key header in place: verification is on the
            // client's hot path (Fig. 7) and a full `Record::decode` would
            // copy the payload just to look at the first 12 bytes.
            let Some((id, key)) = record_header(bytes) else {
                return Err(SaeVerifyError::BadRecordEncoding);
            };
            if !seen_ids.insert(id) {
                return Err(SaeVerifyError::DuplicateRecordId(id));
            }
            if !q.contains(key) {
                return Err(SaeVerifyError::KeyOutOfRange);
            }
            if prev_key.is_some_and(|p| p > key) {
                return Err(SaeVerifyError::NotSorted);
            }
            prev_key = Some(key);
        }

        // ---- 2. The cryptographic check: XOR the digests, compare with VT.
        let mut acc = Digest::ZERO;
        for record in result_records {
            acc ^= self.alg.hash(record);
        }
        if acc == *vt {
            Ok(())
        } else {
            Err(SaeVerifyError::TokenMismatch)
        }
    }
}

/// Everything a query run produces under SAE.
#[derive(Clone, Debug)]
pub struct SaeQueryOutcome {
    /// The (possibly tampered) result the SP returned, encoded records.
    pub records: Vec<Vec<u8>>,
    /// The verification token from the TE.
    pub vt: Digest,
    /// Cost accounting for this query.
    pub metrics: QueryMetrics,
}

/// A complete SAE deployment over in-memory or file-backed page stores.
pub struct SaeSystem {
    sp: SaeServiceProvider,
    te: TrustedEntity,
    client: SaeClient,
    alg: HashAlgorithm,
    cost_model: CostModel,
    /// The durable backing when the deployment was created with
    /// [`SaeSystem::create_dir`] / reopened with [`SaeSystem::open_dir`];
    /// `None` for in-memory deployments.
    durability: Option<Durability>,
}

impl SaeSystem {
    /// Builds a deployment on fresh in-memory stores (one per party).
    pub fn build_in_memory(dataset: &Dataset, alg: HashAlgorithm) -> StorageResult<Self> {
        Self::build(
            MemPager::new_shared(),
            MemPager::new_shared(),
            dataset,
            alg,
            CostModel::paper(),
            TeMode::XbTree,
        )
    }

    /// Builds a deployment on explicit page stores.
    pub fn build(
        sp_store: SharedPageStore,
        te_store: SharedPageStore,
        dataset: &Dataset,
        alg: HashAlgorithm,
        cost_model: CostModel,
        te_mode: TeMode,
    ) -> StorageResult<Self> {
        let sp = SaeServiceProvider::build(sp_store, dataset)?;
        let te = TrustedEntity::build(te_store, dataset, alg, te_mode)?;
        Ok(SaeSystem {
            sp,
            te,
            client: SaeClient::with_record_len(alg, dataset.spec.record_size),
            alg,
            cost_model,
            durability: None,
        })
    }

    /// Creates a *durable* deployment in `dir`: the SP lives in
    /// `sp-0.pages`, the TE in `te-0.pages` (each optionally behind a
    /// write-back [`sae_storage::CachedPager`] of `cache_pages` pages), and
    /// a `MANIFEST` records the committed roots. Every accepted data-owner
    /// update is flushed and synced in commit order — pages before manifest
    /// — so the deployment survives a restart via [`SaeSystem::open_dir`].
    pub fn create_dir(
        dir: &Path,
        dataset: &Dataset,
        alg: HashAlgorithm,
        cache_pages: Option<usize>,
    ) -> StorageResult<Self> {
        Self::create_dir_with(dir, dataset, alg, cache_pages, DurabilityPolicy::Immediate)
    }

    /// Like [`SaeSystem::create_dir`], with an explicit [`DurabilityPolicy`]
    /// governing when accepted updates commit: per update (`Immediate`),
    /// batched (`Group` — with `&mut self` access there is no concurrent
    /// batch to join, so each update commits on its own ticket), or only at
    /// `flush()`/`close()` (`FlushOnClose`, for bulk loads).
    pub fn create_dir_with(
        dir: &Path,
        dataset: &Dataset,
        alg: HashAlgorithm,
        cache_pages: Option<usize>,
        policy: DurabilityPolicy,
    ) -> StorageResult<Self> {
        let durability = Durability::create(
            dir,
            &[dataset.spec.distribution.domain()],
            dataset.spec.record_size,
            cache_pages,
            policy,
        )?;
        let stores = durability.stores(0);
        let sp = SaeServiceProvider::build(stores.sp_store, dataset)?;
        let te = TrustedEntity::build(stores.te_store, dataset, alg, TeMode::XbTree)?;
        durability.commit_shard(0, &sp, &te)?;
        Ok(SaeSystem {
            sp,
            te,
            client: SaeClient::with_record_len(alg, dataset.spec.record_size),
            alg,
            cost_model: CostModel::paper(),
            durability: Some(durability),
        })
    }

    /// Reopens a deployment created by [`SaeSystem::create_dir`] from its
    /// committed roots — the trees are *not* rebuilt from the dataset. Torn
    /// or garbage manifests, swapped shard files, epoch mismatches
    /// ([`StorageError::StaleManifest`]) and a TE that no longer folds to
    /// its published digest are all rejected with typed errors.
    pub fn open_dir(
        dir: &Path,
        alg: HashAlgorithm,
        cache_pages: Option<usize>,
    ) -> StorageResult<Self> {
        Self::open_dir_with(dir, alg, cache_pages, DurabilityPolicy::Immediate)
    }

    /// Like [`SaeSystem::open_dir`], with an explicit [`DurabilityPolicy`]
    /// for the reopened deployment's future commits.
    pub fn open_dir_with(
        dir: &Path,
        alg: HashAlgorithm,
        cache_pages: Option<usize>,
        policy: DurabilityPolicy,
    ) -> StorageResult<Self> {
        let (durability, mut recovered) = Durability::open(dir, cache_pages, policy)?;
        if durability.shard_count() != 1 {
            return Err(StorageError::Corrupted(format!(
                "deployment has {} shards; reopen it with ShardedSaeEngine::open_dir",
                durability.shard_count()
            )));
        }
        let record_size = durability.record_size();
        let shard = recovered.remove(0);
        let stores = durability.stores(0);
        let sp = SaeServiceProvider::open(
            stores.sp_store,
            record_size,
            shard.meta.heap_record_count,
            shard.heap_pages,
            shard.meta.sp_index,
        )?;
        let te = TrustedEntity::open(
            stores.te_store,
            shard.meta.te_tree,
            alg,
            Durability::digest_of(&shard.meta),
        )?;
        Ok(SaeSystem {
            sp,
            te,
            client: SaeClient::with_record_len(alg, record_size),
            alg,
            cost_model: CostModel::paper(),
            durability: Some(durability),
        })
    }

    /// Whether this deployment is backed by durable files.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durability policy of a durable deployment; `None` in memory.
    pub fn durability_policy(&self) -> Option<DurabilityPolicy> {
        self.durability.as_ref().map(|d| d.policy())
    }

    /// Commits the current state through the policy-appropriate path after
    /// an accepted update: nothing under `FlushOnClose`, otherwise a
    /// ticketed write-ahead-log commit — append plus one log fsync,
    /// checkpointing only when the log is past its threshold. `Immediate`
    /// and `Group` share the funnel; with exclusive `&mut self` access this
    /// caller is always its own leader, so batches are singletons either
    /// way.
    fn commit_update(&self) -> Option<StorageResult<()>> {
        let d = self.durability.as_ref()?;
        Some(match d.policy() {
            DurabilityPolicy::FlushOnClose => Ok(()),
            _ => {
                let ticket = d.announce(0);
                d.wait_durable(0, ticket, || d.commit_write(0, &self.sp, &self.te))
            }
        })
    }

    /// Commits the current state to disk with a forced checkpoint (no-op
    /// for in-memory deployments).
    pub fn flush(&self) -> StorageResult<()> {
        match &self.durability {
            Some(d) => d.commit_shard(0, &self.sp, &self.te),
            None => Ok(()),
        }
    }

    /// Overrides the write-ahead-log size past which a commit folds a
    /// checkpoint in; see
    /// [`crate::sharded::ShardedSaeEngine::set_checkpoint_threshold_bytes`].
    /// A no-op on in-memory deployments.
    pub fn set_checkpoint_threshold_bytes(&self, bytes: u64) {
        if let Some(d) = &self.durability {
            d.set_checkpoint_threshold_bytes(bytes);
        }
    }

    /// Commits and tears the deployment down, surfacing the flush errors
    /// that `Drop` would have to swallow.
    pub fn close(self) -> StorageResult<()> {
        self.flush()
    }

    /// The hash algorithm shared by all parties.
    pub fn hash_algorithm(&self) -> HashAlgorithm {
        self.alg
    }

    /// Access to the SP (for experiments).
    pub fn sp(&self) -> &SaeServiceProvider {
        &self.sp
    }

    /// Access to the TE (for experiments).
    pub fn te(&self) -> &TrustedEntity {
        &self.te
    }

    /// Mutable access to the SP (for experiments and fault injection).
    pub fn sp_mut(&mut self) -> &mut SaeServiceProvider {
        &mut self.sp
    }

    /// Mutable access to the TE (for experiments and fault injection).
    pub fn te_mut(&mut self) -> &mut TrustedEntity {
        &mut self.te
    }

    /// The cost model charged for node accesses.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// Decomposes the deployment into its parties so they can be placed
    /// behind independent locks (see [`crate::engine`]).
    pub fn into_parts(self) -> (SaeServiceProvider, TrustedEntity, SaeClient) {
        (self.sp, self.te, self.client)
    }

    /// Runs one query honestly and verifies it.
    pub fn query(&self, q: &RangeQuery) -> StorageResult<SaeQueryOutcome> {
        self.query_with_tamper(q, TamperStrategy::Honest, 0)
    }

    /// Runs one query with the SP applying the given tampering strategy before
    /// returning the result.
    pub fn query_with_tamper(
        &self,
        q: &RangeQuery,
        tamper: TamperStrategy,
        seed: u64,
    ) -> StorageResult<SaeQueryOutcome> {
        // --- Service provider: compute the result.
        let sp_before = self.sp.store().stats().snapshot();
        let honest = self.sp.query(q)?;
        let sp_delta = self.sp.store().stats().snapshot().delta_since(&sp_before);

        let records = tamper.apply_sized(&honest, q, seed, self.sp.record_len());

        // --- Trusted entity: compute the token (independent of the SP).
        let te_before = self.te.store().stats().snapshot();
        let vt = self.te.generate_vt(q)?;
        let te_delta = self.te.store().stats().snapshot().delta_since(&te_before);

        // --- Client: verify.
        let (verified, client_ms) = self.client.verify(q, &records, &vt);

        Ok(SaeQueryOutcome {
            metrics: QueryMetrics {
                result_cardinality: records.len() as u64,
                sp_node_accesses: sp_delta.node_accesses(),
                sp_charged_ms: self.cost_model.charge_ms(&sp_delta),
                te_node_accesses: te_delta.node_accesses(),
                te_charged_ms: self.cost_model.charge_ms(&te_delta),
                auth_bytes: DIGEST_LEN as u64,
                client_verify_ms: client_ms,
                verified,
            },
            records,
            vt,
        })
    }

    /// Propagates an insertion from the data owner to both the SP and the TE.
    /// If the TE insertion fails after the SP accepted the record, the SP
    /// insertion is rolled back so the parties never diverge. Durable
    /// deployments commit the accepted update (pages before manifest) before
    /// returning.
    pub fn insert_record(&mut self, record: &Record) -> StorageResult<()> {
        insert_into_parties(&mut self.sp, &mut self.te, record)?;
        if let Some(Err(e)) = self.commit_update() {
            // Keep memory and disk agreeing: undo the accepted insert
            // before reporting the failed commit, so a retry does not
            // trip over a DuplicateRecordId for a record the caller was
            // told never landed. (`&mut self` access makes this safe under
            // `Group` too — no concurrent writer built on the state.)
            // Best-effort — the commit failure is the primary error and
            // must not be masked by the rollback.
            let _ = delete_from_parties(&mut self.sp, &mut self.te, record.id, record.key);
            return Err(e);
        }
        Ok(())
    }

    /// Propagates a deletion from the data owner to both the SP and the TE.
    ///
    /// The parties must agree: if exactly one of them holds the record, the
    /// successful removal is rolled back and [`StorageError::Desync`] is
    /// returned instead of leaving the deployment silently diverged (which
    /// would make every later query covering the key fail verification).
    /// Durable deployments commit an effective deletion before returning; if
    /// that commit fails, the in-memory removal is restored so memory and
    /// disk keep agreeing.
    pub fn delete_record(&mut self, id: u64, key: u32) -> StorageResult<bool> {
        let Some((pos, tuple)) = take_from_parties(&mut self.sp, &mut self.te, id, key)? else {
            return Ok(false);
        };
        if let Some(Err(e)) = self.commit_update() {
            // Best-effort restore of both parties; the commit failure is
            // the primary error and must not be masked by the rollback.
            let _ = self.sp.restore(id, key, pos);
            let _ = self.te.restore(tuple);
            return Err(e);
        }
        Ok(true)
    }

    /// Per-party storage consumption (Fig. 8).
    pub fn storage_breakdown(&self) -> StorageBreakdown {
        StorageBreakdown {
            sp_dataset_bytes: self.sp.dataset_bytes(),
            sp_index_bytes: self.sp.index_bytes(),
            te_bytes: self.te.storage_bytes(),
        }
    }
}

/// Inserts a record into both parties; a TE failure rolls the SP insertion
/// back (tombstoning the fresh heap slot) so the parties never diverge.
/// Shared between [`SaeSystem::insert_record`] and the concurrent engine.
pub(crate) fn insert_into_parties(
    sp: &mut SaeServiceProvider,
    te: &mut TrustedEntity,
    record: &Record,
) -> StorageResult<()> {
    sp.insert(record)?;
    if let Err(e) = te.insert(record) {
        sp.take(record.id, record.key)?;
        return Err(e);
    }
    Ok(())
}

/// One full write round trip against a locked SP/TE pair: insert `record`,
/// sleep `hold` (the simulated write I/O, paid while the key range is
/// locked), then delete the record again. Shared by the single-pair and
/// sharded engines' `UpdateService` implementations so the update protocol
/// cannot drift between them.
pub(crate) fn update_parties(
    sp: &mut SaeServiceProvider,
    te: &mut TrustedEntity,
    record: &Record,
    hold: std::time::Duration,
) -> StorageResult<()> {
    insert_into_parties(sp, te, record)?;
    if !hold.is_zero() {
        std::thread::sleep(hold);
    }
    delete_from_parties(sp, te, record.id, record.key)?;
    Ok(())
}

/// Deletes `(id, key)` from both parties with rollback on disagreement.
/// Shared between [`SaeSystem::delete_record`] and the concurrent engine,
/// which holds the parties behind independent locks.
pub(crate) fn delete_from_parties(
    sp: &mut SaeServiceProvider,
    te: &mut TrustedEntity,
    id: u64,
    key: u32,
) -> StorageResult<bool> {
    Ok(take_from_parties(sp, te, id, key)?.is_some())
}

/// Like [`delete_from_parties`], but returns the removed state — the SP heap
/// position and the TE tuple — so a caller whose *durable commit* fails
/// after the in-memory removal can restore both parties and keep memory and
/// disk agreeing.
pub(crate) fn take_from_parties(
    sp: &mut SaeServiceProvider,
    te: &mut TrustedEntity,
    id: u64,
    key: u32,
) -> StorageResult<Option<(RecordId, TeTuple)>> {
    let sp_pos = sp.take(id, key)?;
    let te_tuple = match te.take(id, key) {
        Ok(tuple) => tuple,
        Err(e) => {
            // A TE *storage error* (not a disagreement) must also undo the SP
            // removal, or the error path itself would desynchronize the
            // parties.
            if let Some(pos) = sp_pos {
                sp.restore(id, key, pos)?;
            }
            return Err(e);
        }
    };
    match (sp_pos, te_tuple) {
        (Some(pos), Some(tuple)) => Ok(Some((pos, tuple))),
        (None, None) => Ok(None),
        (Some(pos), None) => {
            sp.restore(id, key, pos)?;
            Err(StorageError::Desync(format!(
                "delete({id}, {key}): the SP held the record but the TE had no tuple; \
                 the SP removal was rolled back"
            )))
        }
        (None, Some(tuple)) => {
            te.restore(tuple)?;
            Err(StorageError::Desync(format!(
                "delete({id}, {key}): the TE held a tuple but the SP had no record; \
                 the TE removal was rolled back"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_workload::{DatasetSpec, KeyDistribution};

    fn small_dataset(n: usize) -> Dataset {
        DatasetSpec {
            cardinality: n,
            distribution: KeyDistribution::Uniform { domain: 50_000 },
            record_size: 200,
            seed: 21,
        }
        .generate()
    }

    #[test]
    fn honest_queries_verify_and_match_the_oracle() {
        let ds = small_dataset(4_000);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        for (lo, hi) in [
            (0u32, 50_000u32),
            (10_000, 12_000),
            (49_000, 50_000),
            (7, 7),
        ] {
            let q = RangeQuery::new(lo, hi);
            let outcome = system.query(&q).unwrap();
            assert!(outcome.metrics.verified, "query [{lo}, {hi}]");
            assert_eq!(
                outcome.records.len(),
                ds.query_cardinality(&q),
                "query [{lo}, {hi}]"
            );
            // Every returned record decodes and satisfies the query.
            for bytes in &outcome.records {
                let r = Record::decode(bytes).unwrap();
                assert!(q.contains(r.key));
            }
            assert_eq!(outcome.metrics.auth_bytes, 20);
        }
    }

    #[test]
    fn tampered_results_are_rejected() {
        let ds = small_dataset(3_000);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let q = RangeQuery::new(20_000, 24_000);
        assert!(ds.query_cardinality(&q) > 5);

        for strategy in [
            TamperStrategy::DropRecords { count: 1 },
            TamperStrategy::InjectRecords { count: 1 },
            TamperStrategy::ModifyRecords { count: 1 },
            TamperStrategy::SubstituteResult { count: 10 },
            TamperStrategy::DuplicatePair { count: 1 },
            TamperStrategy::DuplicateExisting { count: 1 },
        ] {
            let outcome = system.query_with_tamper(&q, strategy, 99).unwrap();
            assert!(!outcome.metrics.verified, "{strategy:?} went undetected");
        }
    }

    /// Regression for the XOR duplicate-injection soundness hole: a bare XOR
    /// fold of the digests *accepts* a result with even-multiplicity
    /// duplicates (`h(r) ⊕ h(r) = 0`), so the demonstration below would have
    /// passed the old `SaeClient::verify`. The structural checks must reject
    /// it.
    #[test]
    fn duplicate_injection_cancels_the_xor_fold_but_is_rejected() {
        let ds = small_dataset(3_000);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let q = RangeQuery::new(20_000, 24_000);

        for strategy in [
            TamperStrategy::DuplicatePair { count: 2 },
            TamperStrategy::DuplicateExisting { count: 1 },
        ] {
            let outcome = system.query_with_tamper(&q, strategy, 7).unwrap();
            // The tampered result really differs from the honest one...
            assert!(
                outcome.records.len() > ds.query_cardinality(&q),
                "{strategy:?}"
            );
            // ...yet its bare XOR fold still equals the TE's token: the old
            // fold-only client accepted exactly this result.
            let mut acc = Digest::ZERO;
            for r in &outcome.records {
                acc ^= HashAlgorithm::Sha1.hash(r);
            }
            assert_eq!(acc, outcome.vt, "{strategy:?} no longer cancels");
            // The structural client rejects it.
            assert!(!outcome.metrics.verified, "{strategy:?} went undetected");
            let client = SaeClient::with_record_len(HashAlgorithm::Sha1, 200);
            let (verdict, _) = client.verify_detailed(&q, &outcome.records, &outcome.vt);
            assert!(
                matches!(verdict, Err(SaeVerifyError::DuplicateRecordId(_))),
                "{strategy:?}: {verdict:?}"
            );
        }
    }

    #[test]
    fn client_rejects_malformed_result_structures() {
        let alg = HashAlgorithm::Sha1;
        let client = SaeClient::with_record_len(alg, 64);
        let q = RangeQuery::new(100, 200);
        let a = Record::with_size(1, 120, 64);
        let b = Record::with_size(2, 150, 64);
        let vt_of = |records: &[&Record]| {
            let mut acc = Digest::ZERO;
            for r in records {
                acc ^= r.digest(alg);
            }
            acc
        };

        // Honest baseline accepts.
        let vt = vt_of(&[&a, &b]);
        let (ok, _) = client.verify(&q, &[a.encode(), b.encode()], &vt);
        assert!(ok);

        // Wrong record length (the fabricated record cancels itself, so only
        // the length check can catch it).
        let bogus = Record::with_size(99, 150, 32);
        let with_pair = vec![a.encode(), bogus.encode(), bogus.encode(), b.encode()];
        let (verdict, _) = client.verify_detailed(&q, &with_pair, &vt_of(&[&a, &b]));
        assert!(matches!(
            verdict,
            Err(SaeVerifyError::WrongRecordLength { expected: 64, .. })
        ));

        // Key outside the query range.
        let outside = Record::with_size(3, 500, 64);
        let (verdict, _) =
            client.verify_detailed(&q, &[a.encode(), outside.encode()], &vt_of(&[&a, &outside]));
        assert_eq!(verdict, Err(SaeVerifyError::KeyOutOfRange));

        // Unsorted keys.
        let (verdict, _) = client.verify_detailed(&q, &[b.encode(), a.encode()], &vt_of(&[&a, &b]));
        assert_eq!(verdict, Err(SaeVerifyError::NotSorted));

        // Undecodable record (too short for the header) with a matching
        // record-length-free client.
        let free_client = SaeClient::new(alg);
        let stub = vec![0u8; 4];
        let mut acc = Digest::ZERO;
        acc ^= alg.hash(&stub);
        let (verdict, _) = free_client.verify_detailed(&q, &[stub], &acc);
        assert_eq!(verdict, Err(SaeVerifyError::BadRecordEncoding));

        // Plain token mismatch still reported.
        let (verdict, _) = client.verify_detailed(&q, &[a.encode()], &vt_of(&[&a, &b]));
        assert_eq!(verdict, Err(SaeVerifyError::TokenMismatch));
    }

    #[test]
    fn duplicate_insert_is_rejected_without_corrupting_the_sp() {
        let ds = small_dataset(500);
        let mut system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let existing = ds.records[0].clone();
        let clash = Record::with_size(existing.id, 49_999, 200);
        assert!(matches!(
            system.insert_record(&clash),
            Err(StorageError::DuplicateRecordId(_))
        ));
        // The original record is still served and verifiable.
        let q = RangeQuery::new(existing.key, existing.key);
        let outcome = system.query(&q).unwrap();
        assert!(outcome.metrics.verified);
        assert!(outcome
            .records
            .iter()
            .any(|r| Record::decode(r).unwrap().id == existing.id));
    }

    #[test]
    fn one_sided_deletes_roll_back_and_report_desync() {
        let ds = small_dataset(1_000);
        let mut system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let victim = ds.records[7].clone();

        // Diverge the parties: the TE loses the tuple, the SP keeps the record.
        assert!(system.te_mut().delete(victim.id, victim.key).unwrap());
        let err = system.delete_record(victim.id, victim.key).unwrap_err();
        assert!(matches!(err, StorageError::Desync(_)), "{err}");
        // The SP removal was rolled back: the record is still queryable.
        let q = RangeQuery::new(victim.key, victim.key);
        let outcome = system.query(&q).unwrap();
        assert!(outcome
            .records
            .iter()
            .any(|r| Record::decode(r).unwrap().id == victim.id));

        // The mirrored direction: the SP loses the record, the TE keeps it.
        let victim2 = ds.records[13].clone();
        assert!(system.sp_mut().delete(victim2.id, victim2.key).unwrap());
        let err = system.delete_record(victim2.id, victim2.key).unwrap_err();
        assert!(matches!(err, StorageError::Desync(_)), "{err}");
        // The TE rollback keeps its tuple: the honest token still covers the
        // record, so the (now incomplete) SP result fails verification — the
        // divergence is *detected*, not silently accepted.
        let q2 = RangeQuery::new(victim2.key, victim2.key);
        let outcome = system.query(&q2).unwrap();
        assert!(!outcome.metrics.verified);
    }

    #[test]
    fn empty_results_verify_with_zero_token() {
        let ds = small_dataset(500);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let q = RangeQuery::new(60_000, 70_000); // outside the key domain
        let outcome = system.query(&q).unwrap();
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.vt, Digest::ZERO);
        assert!(outcome.metrics.verified);
    }

    #[test]
    fn te_cost_is_much_smaller_than_sp_cost() {
        let ds = small_dataset(5_000);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let q = RangeQuery::new(0, 25_000); // half the domain
        let outcome = system.query(&q).unwrap();
        assert!(outcome.metrics.sp_node_accesses > 5 * outcome.metrics.te_node_accesses);
        assert!(outcome.metrics.sp_charged_ms > outcome.metrics.te_charged_ms);
    }

    #[test]
    fn updates_propagate_to_both_parties() {
        let ds = small_dataset(1_000);
        let mut system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();

        // Insert a fresh record and query for it.
        let new_record = Record::with_size(1_000_000, 123, 200);
        system.insert_record(&new_record).unwrap();
        let q = RangeQuery::new(123, 123);
        let outcome = system.query(&q).unwrap();
        assert!(outcome.metrics.verified);
        assert!(outcome
            .records
            .iter()
            .any(|r| Record::decode(r).unwrap().id == 1_000_000));

        // Delete it again.
        assert!(system.delete_record(1_000_000, 123).unwrap());
        let outcome = system.query(&q).unwrap();
        assert!(outcome.metrics.verified);
        assert!(!outcome
            .records
            .iter()
            .any(|r| Record::decode(r).unwrap().id == 1_000_000));

        // Deleting a non-existent record reports false.
        assert!(!system.delete_record(1_000_000, 123).unwrap());
    }

    #[test]
    fn sequential_scan_mode_yields_the_same_tokens_at_higher_cost() {
        let ds = small_dataset(3_000);
        let tree_mode = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let scan_mode = SaeSystem::build(
            MemPager::new_shared(),
            MemPager::new_shared(),
            &ds,
            HashAlgorithm::Sha1,
            CostModel::paper(),
            TeMode::SequentialScan,
        )
        .unwrap();
        let q = RangeQuery::new(1_000, 2_000);
        let a = tree_mode.query(&q).unwrap();
        let b = scan_mode.query(&q).unwrap();
        assert_eq!(a.vt, b.vt);
        assert!(a.metrics.verified && b.metrics.verified);
        assert!(b.metrics.te_node_accesses > a.metrics.te_node_accesses);
    }

    #[test]
    fn durable_system_round_trips_through_close_and_open() {
        let dir = tempfile::tempdir().unwrap();
        let ds = small_dataset(1_500);
        let mut system =
            SaeSystem::create_dir(dir.path(), &ds, HashAlgorithm::Sha1, Some(64)).unwrap();
        assert!(system.is_durable());
        let fresh = Record::with_size(2_000_000, 25_000, 200);
        system.insert_record(&fresh).unwrap();
        let victim = ds.records[3].clone();
        assert!(system.delete_record(victim.id, victim.key).unwrap());
        let q = RangeQuery::new(0, 50_000);
        let before = system.query(&q).unwrap();
        assert!(before.metrics.verified);
        system.close().unwrap();

        let reopened = SaeSystem::open_dir(dir.path(), HashAlgorithm::Sha1, Some(64)).unwrap();
        let after = reopened.query(&q).unwrap();
        assert!(after.metrics.verified);
        assert_eq!(after.records, before.records);
        assert_eq!(after.vt, before.vt);
        // The insert survived, the delete stayed deleted.
        let ids: Vec<u64> = after
            .records
            .iter()
            .map(|r| Record::decode(r).unwrap().id)
            .collect();
        assert!(ids.contains(&2_000_000));
        assert!(!ids.contains(&victim.id));
        // Tampered results are still rejected after recovery.
        let outcome = reopened
            .query_with_tamper(&q, TamperStrategy::DropRecords { count: 1 }, 5)
            .unwrap();
        assert!(!outcome.metrics.verified);
        reopened.close().unwrap();

        // A multi-shard directory cannot be opened as a single-pair system.
        let sharded_dir = tempfile::tempdir().unwrap();
        crate::sharded::ShardedSaeEngine::create_dir(
            sharded_dir.path(),
            &ds,
            HashAlgorithm::Sha1,
            2,
            None,
        )
        .unwrap()
        .close()
        .unwrap();
        assert!(matches!(
            SaeSystem::open_dir(sharded_dir.path(), HashAlgorithm::Sha1, None),
            Err(StorageError::Corrupted(_))
        ));
    }

    #[test]
    fn storage_breakdown_matches_figure_8_shape() {
        let ds = small_dataset(4_000);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let s = system.storage_breakdown();
        // The SP's storage is dominated by the dataset; the TE is a fraction.
        assert!(s.sp_dataset_bytes > s.sp_index_bytes);
        assert!(s.te_bytes < s.sp_total_bytes() / 2);
        assert!(s.te_bytes > 0);
    }
}
