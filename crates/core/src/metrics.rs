//! Per-query and per-deployment cost accounting.
//!
//! The paper's figures report four quantities as functions of the dataset
//! cardinality: authentication bytes exchanged (Fig. 5), query-processing
//! milliseconds charged to each party at 10 ms per node access (Fig. 6),
//! client verification milliseconds (Fig. 7) and storage megabytes per party
//! (Fig. 8). [`QueryMetrics`] captures the per-query quantities;
//! [`StorageBreakdown`] the per-deployment ones.

use serde::{Deserialize, Serialize};

/// Costs incurred while answering and verifying one range query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// Number of records in the (claimed) result.
    pub result_cardinality: u64,
    /// Node accesses performed by the service provider.
    pub sp_node_accesses: u64,
    /// Milliseconds charged to the SP (`node accesses × 10 ms` by default).
    pub sp_charged_ms: f64,
    /// Node accesses performed by the trusted entity (0 under TOM).
    pub te_node_accesses: u64,
    /// Milliseconds charged to the TE.
    pub te_charged_ms: f64,
    /// Authentication bytes shipped to the client: the VT size under SAE, the
    /// VO size under TOM. Excludes the result records themselves (as in the
    /// paper's Figure 5).
    pub auth_bytes: u64,
    /// Wall-clock milliseconds the client spent verifying the result.
    pub client_verify_ms: f64,
    /// Whether verification accepted the result.
    pub verified: bool,
}

impl QueryMetrics {
    /// Merges another query's metrics into an accumulating total.
    pub fn accumulate(&mut self, other: &QueryMetrics) {
        self.result_cardinality += other.result_cardinality;
        self.sp_node_accesses += other.sp_node_accesses;
        self.sp_charged_ms += other.sp_charged_ms;
        self.te_node_accesses += other.te_node_accesses;
        self.te_charged_ms += other.te_charged_ms;
        self.auth_bytes += other.auth_bytes;
        self.client_verify_ms += other.client_verify_ms;
        self.verified &= other.verified;
    }

    /// Divides all additive fields by `n`, producing per-query averages.
    pub fn averaged_over(&self, n: u64) -> QueryMetrics {
        if n == 0 {
            return *self;
        }
        QueryMetrics {
            result_cardinality: self.result_cardinality / n,
            sp_node_accesses: self.sp_node_accesses / n,
            sp_charged_ms: self.sp_charged_ms / n as f64,
            te_node_accesses: self.te_node_accesses / n,
            te_charged_ms: self.te_charged_ms / n as f64,
            auth_bytes: self.auth_bytes / n,
            client_verify_ms: self.client_verify_ms / n as f64,
            verified: self.verified,
        }
    }
}

/// Latency distribution of a batch of queries, in wall-clock milliseconds.
///
/// Produced by the concurrent engine's drivers (see [`crate::engine`]): each
/// worker thread records one wall-clock latency per query, and the per-thread
/// samples are merged into one summary for the batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of latency samples summarized.
    pub samples: u64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median (50th percentile).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed latency.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarizes a set of latency samples. The slice is sorted in place.
    pub fn from_samples(samples: &mut [f64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let pct = |p: f64| {
            // Nearest-rank percentile: the smallest sample ≥ p% of the data.
            let rank = ((p / 100.0) * n as f64).ceil() as usize;
            samples[rank.clamp(1, n) - 1]
        };
        LatencySummary {
            samples: n as u64,
            mean_ms: samples.iter().sum::<f64>() / n as f64,
            p50_ms: pct(50.0),
            p95_ms: pct(95.0),
            p99_ms: pct(99.0),
            max_ms: samples[n - 1],
        }
    }
}

/// Storage consumed by each party of a deployment (Fig. 8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageBreakdown {
    /// Bytes of the outsourced dataset at the SP (heap file).
    pub sp_dataset_bytes: u64,
    /// Bytes of the SP's index (B⁺-Tree under SAE, MB-Tree under TOM).
    pub sp_index_bytes: u64,
    /// Bytes kept by the trusted entity (0 under TOM).
    pub te_bytes: u64,
}

impl StorageBreakdown {
    /// Total bytes at the service provider.
    pub fn sp_total_bytes(&self) -> u64 {
        self.sp_dataset_bytes + self.sp_index_bytes
    }

    /// Total bytes at the service provider, in megabytes.
    pub fn sp_total_mb(&self) -> f64 {
        self.sp_total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Trusted entity bytes, in megabytes.
    pub fn te_mb(&self) -> f64 {
        self.te_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_average() {
        let mut total = QueryMetrics {
            verified: true,
            ..Default::default()
        };
        for i in 1..=4u64 {
            total.accumulate(&QueryMetrics {
                result_cardinality: i,
                sp_node_accesses: 10 * i,
                sp_charged_ms: 100.0 * i as f64,
                te_node_accesses: i,
                te_charged_ms: 10.0 * i as f64,
                auth_bytes: 20,
                client_verify_ms: 2.0,
                verified: true,
            });
        }
        assert_eq!(total.result_cardinality, 10);
        assert_eq!(total.sp_node_accesses, 100);
        assert_eq!(total.auth_bytes, 80);
        assert!(total.verified);

        let avg = total.averaged_over(4);
        assert_eq!(avg.sp_node_accesses, 25);
        assert_eq!(avg.sp_charged_ms, 250.0);
        assert_eq!(avg.auth_bytes, 20);
        assert_eq!(avg.client_verify_ms, 2.0);
    }

    #[test]
    fn accumulate_propagates_verification_failure() {
        let mut total = QueryMetrics {
            verified: true,
            ..Default::default()
        };
        total.accumulate(&QueryMetrics {
            verified: false,
            ..Default::default()
        });
        assert!(!total.verified);
    }

    #[test]
    fn averaging_over_zero_is_identity() {
        let m = QueryMetrics {
            sp_node_accesses: 7,
            ..Default::default()
        };
        assert_eq!(m.averaged_over(0), m);
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);

        assert_eq!(
            LatencySummary::from_samples(&mut []),
            LatencySummary::default()
        );
        let mut one = vec![7.0];
        let s = LatencySummary::from_samples(&mut one);
        assert_eq!((s.p50_ms, s.p99_ms, s.max_ms), (7.0, 7.0, 7.0));
    }

    #[test]
    fn storage_breakdown_totals() {
        let s = StorageBreakdown {
            sp_dataset_bytes: 500 * 1024 * 1024,
            sp_index_bytes: 24 * 1024 * 1024,
            te_bytes: 32 * 1024 * 1024,
        };
        assert_eq!(s.sp_total_bytes(), 524 * 1024 * 1024);
        assert!((s.sp_total_mb() - 524.0).abs() < 1e-9);
        assert!((s.te_mb() - 32.0).abs() < 1e-9);
    }
}
