//! # sae-core
//!
//! The outsourcing protocols of the paper, end to end: **SAE** (the proposed
//! model that separates authentication from query execution) and **TOM** (the
//! traditional model used as the baseline).
//!
//! ## Entities
//!
//! | Entity | SAE ([`sae`]) | TOM ([`tom`]) |
//! |--------|---------------|----------------|
//! | Data owner (DO) | ships records to the SP and reduced tuples to the TE; forwards updates | builds/maintains the MB-Tree digests, signs the root, forwards updates |
//! | Service provider (SP) | conventional DBMS: heap file + B⁺-Tree, returns *only* results | heap file + MB-Tree, returns results **and** a VO |
//! | Trusted entity (TE) | XB-Tree over `(id, key, digest)` tuples, returns the 20-byte VT | — (does not exist) |
//! | Client | XORs the digests of the received records and compares with the VT | re-constructs the root digest from result + VO and checks the signature |
//!
//! ## What the crate provides
//!
//! * [`sae::SaeSystem`] and [`tom::TomSystem`] — complete, queryable
//!   deployments of each model over any [`sae_storage::PageStore`];
//! * [`tamper::TamperStrategy`] — malicious-SP behaviours (drop / inject /
//!   modify / substitute results) used to exercise the security argument;
//! * [`metrics::QueryMetrics`] — per-query cost accounting in exactly the
//!   units the paper's figures use (authentication bytes, charged
//!   node-access milliseconds per party, client verification time);
//! * [`engine::SaeEngine`]/[`engine::TomEngine`] — the concurrent serving
//!   layer: `RwLock`-partitioned parties, thread-pooled batch/closed-loop
//!   drivers with p50/p99 latency and queries/sec aggregation, and optional
//!   buffer pooling under both parties;
//! * [`sharded::ShardedSaeEngine`] — the key-range sharded deployment: `N`
//!   independent SP/TE pairs behind per-shard lock pairs, routed writes,
//!   and scatter-gather range queries whose per-shard slices the client
//!   stitches back together soundly (a dropped shard slice or a record
//!   smuggled across a shard boundary is a detected tamper);
//! * [`durable`] — the durable serving path: `SaeSystem::create_dir` /
//!   `ShardedSaeEngine::create_dir` give every shard its own
//!   `sp-<i>.pages`/`te-<i>.pages` [`sae_storage::FilePager`] pair under a
//!   checksummed `MANIFEST`, commit every accepted update in pages-before-
//!   manifest order, and `open_dir` reopens the trees from their committed
//!   roots (validating identity headers, commit epochs and the TE's
//!   published digest) instead of rebuilding from the dataset. The
//!   [`durable::DurabilityPolicy`] knob selects *when* accepted writes
//!   commit: per update, batched behind an elected group-commit leader
//!   (one fsync set per batch), or only at `flush()`/`close()`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod durable;
pub mod engine;
pub mod metrics;
pub mod replica;
pub mod sae;
pub mod sharded;
pub mod tamper;
pub mod tom;

pub use durable::{CommitCrashPoint, DurabilityPolicy};
pub use engine::{
    client_ops, serve_batch, serve_mix, serve_ops, MixOp, QueryService, SaeEngine, ServeOptions,
    ThroughputReport, TomEngine, UpdateService,
};
pub use metrics::{LatencySummary, QueryMetrics, StorageBreakdown};
pub use replica::{ReplicaSet, SnapshotHeader, SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC};
pub use sae::{SaeClient, SaeQueryOutcome, SaeSystem, SaeVerifyError, TrustedEntity};
pub use sharded::{
    verify_slices, ShardLayout, ShardSlice, ShardedQueryOutcome, ShardedSaeEngine,
    ShardedVerifyError,
};
pub use tamper::TamperStrategy;
pub use tom::{TomQueryOutcome, TomSystem};
