//! The durable storage layer under [`crate::sae::SaeSystem`] and
//! [`crate::sharded::ShardedSaeEngine`].
//!
//! A durable deployment lives in one directory:
//!
//! ```text
//! deployment/
//!   MANIFEST        one checksummed page: layout bounds, record size,
//!                   per-shard tree roots + shapes, heap geometry,
//!                   commit epochs, published TE digests
//!   sp-0.pages      shard 0's service provider (heap file + B⁺-Tree)
//!   te-0.pages      shard 0's trusted entity (XB-Tree)
//!   sp-1.pages ...  one pager-file pair per shard
//! ```
//!
//! Page 0 of every pager file is a [`ShardHeader`]: the file's identity
//! (shard index + party, so a swapped or renamed file is rejected at open)
//! and its commit epoch. Every committed update follows the same order —
//! **pages before manifest**:
//!
//! 1. the heap page table is rewritten into its [`PageDirectory`] chain,
//! 2. write-back caches are flushed so every data page is in the file,
//! 3. both headers are rewritten with the bumped epoch and both files are
//!    synced,
//! 4. the manifest is atomically replaced (temp file + rename) with the new
//!    roots, shapes and published digest.
//!
//! A crash between 3 and 4 leaves the pager files one epoch ahead of the
//! manifest; [`ShardHeader::validate`] reports that as
//! [`StorageError::StaleManifest`] instead of silently recovering to roots
//! that no longer describe the page contents (tree pages are rewritten in
//! place, so the stale roots may already be overwritten).
//!
//! There is no write-ahead log: the protocol assumes data pages reach the
//! file only at commit time. With a write-back [`CachedPager`] wired
//! (`cache_pages: Some(..)`) that holds — dirty pages stay in the pool until
//! the commit flush (modulo capacity evictions). Without a cache,
//! [`FilePager`] writes through immediately, so a crash *mid-update* can
//! leave in-place page edits the stale manifest roots do not describe;
//! recovery then reports corruption (the TE's published-digest check, the
//! heap geometry checks) rather than silently serving a torn state. A WAL /
//! group commit is the ROADMAP follow-up.
//!
//! The crate-private `Durability` type is deliberately engine-agnostic: it
//! owns the pager handles, caches, commit state and manifest, while the
//! deployment types own the trees. Its `Drop` performs the best-effort flush
//! that `Drop` must swallow; the deployments' explicit `close()` methods run
//! the same flush through the commit path and surface its errors.

use crate::sae::{SaeServiceProvider, TrustedEntity};
use parking_lot::Mutex;
use sae_crypto::Digest;
use sae_storage::{
    CachedPager, FilePager, Manifest, PageDirectory, PageId, PageStore, Party, ShardHeader,
    ShardMeta, SharedPageStore, StorageError, StorageResult, TreeMeta, SHARD_HEADER_PAGE,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the deployment manifest inside a deployment directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// One party's file-backed store: the raw pager (what gets synced and holds
/// the header + page-directory pages) and the store the trees run on (the
/// pager itself, or a write-back [`CachedPager`] over it).
pub(crate) struct PartyFiles {
    pager: Arc<FilePager>,
    cache: Option<Arc<CachedPager>>,
    store: SharedPageStore,
}

impl PartyFiles {
    fn wrap(pager: Arc<FilePager>, cache_pages: Option<usize>) -> PartyFiles {
        let (cache, store): (_, SharedPageStore) = match cache_pages {
            Some(pages) => {
                let cache = Arc::new(CachedPager::new(
                    Arc::clone(&pager) as SharedPageStore,
                    pages,
                ));
                (Some(Arc::clone(&cache)), cache)
            }
            None => (None, Arc::clone(&pager) as SharedPageStore),
        };
        PartyFiles {
            pager,
            cache,
            store,
        }
    }

    fn flush(&self) -> StorageResult<()> {
        if let Some(cache) = &self.cache {
            cache.flush()?;
        }
        Ok(())
    }
}

/// Per-shard commit state, serialized under one mutex so two commits of the
/// same shard can never interleave their header/epoch writes.
struct ShardCommitState {
    epoch: u64,
    heap_dir: PageDirectory,
}

/// One shard's durable storage: both parties' files plus the commit state.
pub(crate) struct ShardFiles {
    upper: u32,
    sp: PartyFiles,
    te: PartyFiles,
    state: Mutex<ShardCommitState>,
}

/// The stores a deployment builds (or reopens) its trees on; cloned out of
/// [`Durability`] so the engine can wire them under its parties.
pub(crate) struct ShardStores {
    pub sp_store: SharedPageStore,
    pub sp_cache: Option<Arc<CachedPager>>,
    pub te_store: SharedPageStore,
}

/// Everything [`Durability::open`] recovers about one shard before the trees
/// are reopened.
pub(crate) struct RecoveredShard {
    pub meta: ShardMeta,
    pub heap_pages: Vec<PageId>,
}

/// The durable backing of a deployment directory. See the module docs for
/// the file layout and commit protocol.
pub(crate) struct Durability {
    manifest_path: PathBuf,
    manifest: Mutex<Manifest>,
    shards: Vec<ShardFiles>,
}

fn sp_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("{}-{shard}.pages", Party::Sp.prefix()))
}

fn te_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("{}-{shard}.pages", Party::Te.prefix()))
}

fn placeholder_meta(upper: u32) -> ShardMeta {
    let empty = TreeMeta {
        root: PageId::INVALID,
        height: 0,
        len: 0,
        node_count: 0,
    };
    ShardMeta {
        upper,
        epoch: 0,
        sp_index: empty,
        heap_record_count: 0,
        heap_page_count: 0,
        heap_dir_head: PageId::INVALID,
        te_tree: empty,
        te_digest: [0u8; sae_storage::TE_DIGEST_LEN],
    }
}

/// Creates one party's pager file with its identity header at page 0.
fn create_party_file(path: &Path, shard: usize, party: Party) -> StorageResult<Arc<FilePager>> {
    let pager = Arc::new(FilePager::create(path)?);
    let header_page = pager.allocate()?;
    debug_assert_eq!(header_page, SHARD_HEADER_PAGE);
    let header = ShardHeader {
        shard: shard as u32,
        party,
        epoch: 0,
    };
    pager.write(SHARD_HEADER_PAGE, &header.encode())?;
    Ok(pager)
}

/// Opens one party's pager file, validating its identity and epoch against
/// the manifest. A missing file is reported as corruption (the deployment
/// directory is incomplete), not a bare I/O error.
fn open_party_file(
    path: &Path,
    shard: usize,
    party: Party,
    manifest_epoch: u64,
) -> StorageResult<Arc<FilePager>> {
    let pager = FilePager::open(path).map_err(|e| match e {
        StorageError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => {
            StorageError::Corrupted(format!(
                "deployment is missing shard file {}",
                path.display()
            ))
        }
        other => other,
    })?;
    let pager = Arc::new(pager);
    ShardHeader::validate(pager.as_ref(), shard as u32, party, manifest_epoch)?;
    Ok(pager)
}

impl Durability {
    /// Creates the deployment directory layout for a fresh deployment:
    /// per-shard pager files with identity headers and empty heap page
    /// directories, plus an in-memory manifest that the first
    /// [`Durability::commit_shard`] calls will fill and persist.
    pub(crate) fn create(
        dir: &Path,
        uppers: &[u32],
        record_size: usize,
        cache_pages: Option<usize>,
    ) -> StorageResult<Durability> {
        // Fail fast on a layout the manifest page cannot describe, before
        // any file is created or bulk load starts.
        if uppers.len() > sae_storage::manifest::MAX_MANIFEST_SHARDS {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "a durable deployment supports at most {} shards, got {}",
                    sae_storage::manifest::MAX_MANIFEST_SHARDS,
                    uppers.len()
                ),
            )));
        }
        // Refuse to zero an existing deployment: `FilePager::create`
        // truncates, so re-running a creation script against a live
        // directory would destroy committed data before anyone noticed.
        if dir.join(MANIFEST_FILE).exists() {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!(
                    "a deployment already exists at {} — reopen it with open_dir, or remove \
                     the directory to recreate it",
                    dir.display()
                ),
            )));
        }
        std::fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(uppers.len());
        for (i, &upper) in uppers.iter().enumerate() {
            let sp_pager = create_party_file(&sp_path(dir, i), i, Party::Sp)?;
            let te_pager = create_party_file(&te_path(dir, i), i, Party::Te)?;
            // The heap page directory lives right after the SP header, and is
            // always accessed through the raw pager so the write-back cache
            // never holds a competing copy.
            let (heap_dir, _head) = PageDirectory::create(sp_pager.as_ref())?;
            shards.push(ShardFiles {
                upper,
                sp: PartyFiles::wrap(sp_pager, cache_pages),
                te: PartyFiles::wrap(te_pager, cache_pages),
                state: Mutex::new(ShardCommitState { epoch: 0, heap_dir }),
            });
        }
        let manifest = Manifest {
            record_size: record_size as u32,
            domain: *uppers.last().expect("at least one shard"),
            shards: uppers.iter().map(|&u| placeholder_meta(u)).collect(),
        };
        Ok(Durability {
            manifest_path: dir.join(MANIFEST_FILE),
            manifest: Mutex::new(manifest),
            shards,
        })
    }

    /// Reopens a deployment directory: loads and validates the manifest,
    /// opens every pager file (validating identity headers and commit
    /// epochs) and recovers each shard's heap page table. The trees are then
    /// reopened by the caller from the returned [`RecoveredShard`] metas.
    pub(crate) fn open(
        dir: &Path,
        cache_pages: Option<usize>,
    ) -> StorageResult<(Durability, Vec<RecoveredShard>)> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = Manifest::load(&manifest_path)?;
        let mut shards = Vec::with_capacity(manifest.shards.len());
        let mut recovered = Vec::with_capacity(manifest.shards.len());
        for (i, meta) in manifest.shards.iter().enumerate() {
            let sp_pager = open_party_file(&sp_path(dir, i), i, Party::Sp, meta.epoch)?;
            let te_pager = open_party_file(&te_path(dir, i), i, Party::Te, meta.epoch)?;
            let (heap_dir, heap_pages) =
                PageDirectory::open(sp_pager.as_ref(), meta.heap_dir_head, meta.heap_page_count)?;
            shards.push(ShardFiles {
                upper: meta.upper,
                sp: PartyFiles::wrap(sp_pager, cache_pages),
                te: PartyFiles::wrap(te_pager, cache_pages),
                state: Mutex::new(ShardCommitState {
                    epoch: meta.epoch,
                    heap_dir,
                }),
            });
            recovered.push(RecoveredShard {
                meta: meta.clone(),
                heap_pages,
            });
        }
        Ok((
            Durability {
                manifest_path,
                manifest: Mutex::new(manifest),
                shards,
            },
            recovered,
        ))
    }

    /// Number of shards the directory holds.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The fixed record length the manifest records.
    pub(crate) fn record_size(&self) -> usize {
        self.manifest.lock().record_size as usize
    }

    /// Clones shard `i`'s stores so the deployment can build or reopen its
    /// trees on them.
    pub(crate) fn stores(&self, i: usize) -> ShardStores {
        let shard = &self.shards[i];
        ShardStores {
            sp_store: Arc::clone(&shard.sp.store),
            sp_cache: shard.sp.cache.clone(),
            te_store: Arc::clone(&shard.te.store),
        }
    }

    /// Commits shard `i`'s current state in the documented order (pages,
    /// headers + sync, then manifest). The caller must hold the shard's
    /// locks (or exclusive access) so `sp`/`te` cannot change mid-commit.
    pub(crate) fn commit_shard(
        &self,
        i: usize,
        sp: &SaeServiceProvider,
        te: &TrustedEntity,
    ) -> StorageResult<()> {
        let shard = &self.shards[i];
        // The shard's state lock is held across the *entire* commit,
        // including the manifest save: if the manifest were written outside
        // it, two concurrent commits of the same shard (e.g. two `flush()`
        // calls, which only take read locks) could invert at the manifest
        // lock and persist an older epoch after a newer one — leaving the
        // pager headers permanently ahead of the manifest, i.e. a deployment
        // that can never open again. Lock order is state(i) → manifest,
        // everywhere.
        let mut state = shard.state.lock();

        // 1. Heap page table, written through the raw pager.
        state
            .heap_dir
            .write(shard.sp.pager.as_ref(), sp.heap().pages())?;

        // 2. Every data page out of the write-back caches.
        shard.sp.flush()?;
        shard.te.flush()?;

        // 3. Headers carry the new epoch; both files hit stable storage
        //    before the manifest that describes them.
        let epoch = state.epoch + 1;
        for (files, party) in [(&shard.sp, Party::Sp), (&shard.te, Party::Te)] {
            let header = ShardHeader {
                shard: i as u32,
                party,
                epoch,
            };
            files.pager.write(SHARD_HEADER_PAGE, &header.encode())?;
            files.pager.sync()?;
        }
        state.epoch = epoch;

        let meta = ShardMeta {
            upper: shard.upper,
            epoch,
            sp_index: sp.index().meta(),
            heap_record_count: sp.heap().record_count(),
            heap_page_count: sp.heap().pages().len() as u64,
            heap_dir_head: state.heap_dir.head(),
            te_tree: te.tree().meta(),
            te_digest: *te.tree().total_xor()?.as_bytes(),
        };

        // 4. Atomic manifest replacement, under the manifest lock so a
        //    concurrent commit of another shard cannot clobber this entry
        //    with an older manifest image.
        let mut manifest = self.manifest.lock();
        manifest.shards[i] = meta;
        manifest.save(&self.manifest_path)
    }

    /// The published digest conversion used when reopening a trusted entity.
    pub(crate) fn digest_of(meta: &ShardMeta) -> Digest {
        Digest::new(meta.te_digest)
    }

    /// Best-effort flush of every cache and pager file, swallowing errors —
    /// this is what `Drop` runs. The manifest is *not* rewritten (that
    /// requires the trees); state mutated outside the commit protocol is
    /// simply not recovered.
    fn sync_best_effort(&self) {
        for shard in &self.shards {
            let _ = shard.sp.flush();
            let _ = shard.te.flush();
            let _ = shard.sp.pager.sync();
            let _ = shard.te.pager.sync();
        }
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        self.sync_best_effort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_file_round_trip_and_identity_checks() {
        let dir = tempfile::tempdir().unwrap();
        let path = sp_path(dir.path(), 0);
        let pager = create_party_file(&path, 0, Party::Sp).unwrap();
        pager.sync().unwrap();
        drop(pager);

        // Reopen with the matching identity and epoch.
        let pager = open_party_file(&path, 0, Party::Sp, 0).unwrap();
        drop(pager);
        // Wrong shard index, wrong party, and a missing file are corruption.
        assert!(matches!(
            open_party_file(&path, 1, Party::Sp, 0),
            Err(StorageError::Corrupted(_))
        ));
        assert!(matches!(
            open_party_file(&path, 0, Party::Te, 0),
            Err(StorageError::Corrupted(_))
        ));
        assert!(matches!(
            open_party_file(&te_path(dir.path(), 0), 0, Party::Te, 0),
            Err(StorageError::Corrupted(_))
        ));
        // A file ahead of the manifest is a stale manifest.
        let pager = Arc::new(FilePager::open(&path).unwrap());
        pager
            .write(
                SHARD_HEADER_PAGE,
                &ShardHeader {
                    shard: 0,
                    party: Party::Sp,
                    epoch: 5,
                }
                .encode(),
            )
            .unwrap();
        drop(pager);
        assert!(matches!(
            open_party_file(&path, 0, Party::Sp, 4),
            Err(StorageError::StaleManifest { .. })
        ));
    }
}
