//! The durable storage layer under [`crate::sae::SaeSystem`] and
//! [`crate::sharded::ShardedSaeEngine`].
//!
//! A durable deployment lives in one directory:
//!
//! ```text
//! deployment/
//!   MANIFEST        one checksummed page: layout bounds, record size,
//!                   per-shard tree roots + shapes, heap geometry,
//!                   commit epochs, published TE digests
//!   sp-0.pages      shard 0's service provider (heap file + B⁺-Tree)
//!   te-0.pages      shard 0's trusted entity (XB-Tree)
//!   sp-1.pages ...  one pager-file pair per shard
//! ```
//!
//! Page 0 of every pager file is a [`ShardHeader`]: the file's identity
//! (shard index + party, so a swapped or renamed file is rejected at open)
//! and its commit epoch. Every committed update follows the same order —
//! **pages before manifest**:
//!
//! 1. the heap page table is rewritten into its [`PageDirectory`] chain
//!    (incrementally — only the chain pages whose content changed),
//! 2. write-back caches are flushed (dirty pages in ascending page-id
//!    order) so every data page is in the file,
//! 3. both headers are rewritten with the bumped epoch and both files are
//!    synced,
//! 4. the manifest is atomically replaced (temp file + rename) with the new
//!    roots, shapes and published digest.
//!
//! A crash between 3 and 4 leaves the pager files one epoch ahead of the
//! manifest; [`ShardHeader::validate`] reports that as
//! [`StorageError::StaleManifest`] instead of silently recovering to roots
//! that no longer describe the page contents (tree pages are rewritten in
//! place, so the stale roots may already be overwritten).
//!
//! ## Durability policies and group commit
//!
//! *When* an accepted update runs the commit above is the
//! [`DurabilityPolicy`] knob:
//!
//! * [`DurabilityPolicy::Immediate`] — every accepted update performs its
//!   own full commit before it is acknowledged. Two `fsync`s plus a
//!   manifest replacement *per update*, all while the writer still holds
//!   its shard's write locks: maximally simple, fsync-bound throughput.
//! * [`DurabilityPolicy::Group`] — classic WAL-style group commit. A writer
//!   mutates its shard in memory, enqueues a commit ticket (while still
//!   holding the shard's write locks), releases the locks and blocks until
//!   a commit *covering its ticket* is durable. The first waiting writer
//!   elects itself leader, optionally gathers a batch (`max_batch` /
//!   `max_wait`), takes the shard's read locks and performs **one** commit
//!   on behalf of the whole batch: one header write + one fsync per file,
//!   the epoch advancing once per batch. Writers queued while a leader is
//!   fsyncing are picked up by the next leader, so batches form naturally
//!   under load. An acknowledged write is durable exactly as under
//!   `Immediate`; a *failed* batch commit is reported to every covered
//!   writer, whose in-memory mutations then stand ahead of disk until the
//!   next successful commit (they cannot be unwound — later writers already
//!   built on them).
//! * [`DurabilityPolicy::FlushOnClose`] — updates are acknowledged from
//!   memory; only explicit `flush()`/`close()` calls commit. For bulk loads
//!   where the caller brackets durability itself.
//!
//! Under the deferred policies, cross-shard commits coalesce at the
//! manifest too: instead of one temp+rename+fsync per `commit_shard` (what
//! `Immediate` does, serializing every shard on the one manifest file),
//! each commit publishes its [`ShardMeta`] into the in-memory manifest and
//! one elected saver persists a snapshot covering every update published so
//! far (the manifest page is cumulative, so a later save subsumes an
//! earlier one). A shard's commit state lock is held across its publication
//! *and* the covering save, so two commits of the same shard can never
//! invert at the manifest — the files-permanently-ahead-of-manifest state
//! is unreachable.
//!
//! There is no write-ahead log: the protocol assumes data pages reach the
//! file only at commit time. With a write-back [`CachedPager`] wired
//! (`cache_pages: Some(..)`) that holds — dirty pages stay in the pool until
//! the commit flush (modulo capacity evictions). Without a cache,
//! [`FilePager`] writes through immediately, so a crash *mid-update* can
//! leave in-place page edits the stale manifest roots do not describe;
//! recovery then reports corruption (the TE's published-digest check, the
//! heap geometry checks) rather than silently serving a torn state. The
//! [`CommitCrashPoint`] hooks let tests kill the pipeline between stages
//! and assert exactly these outcomes.
//!
//! The crate-private `Durability` type is deliberately engine-agnostic: it
//! owns the pager handles, caches, commit state and manifest, while the
//! deployment types own the trees. Under `Immediate`, its `Drop` performs
//! the best-effort flush that `Drop` must swallow; under the other policies
//! `Drop` leaves the files exactly at their last commit (flushing
//! unacknowledged cache contents would overwrite committed pages with state
//! the manifest does not describe). The deployments' explicit `close()`
//! methods run a real commit and surface its errors.

use crate::sae::{SaeServiceProvider, TrustedEntity};
use parking_lot::{Mutex, MutexGuard};
use sae_crypto::Digest;
use sae_storage::{
    CachedPager, FilePager, Manifest, PageDirectory, PageId, PageStore, Party, ShardHeader,
    ShardMeta, SharedPageStore, StorageError, StorageResult, TreeMeta, SHARD_HEADER_PAGE,
};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::{Duration, Instant};

/// File name of the deployment manifest inside a deployment directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// When a durable deployment's accepted writes reach stable storage. See
/// the [module docs](self) for the full protocol behind each mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// Every accepted update performs its own full commit (heap directory,
    /// cache flush, two header writes + fsyncs, manifest replacement)
    /// before it is acknowledged.
    #[default]
    Immediate,
    /// Group commit: concurrent writers enqueue commit tickets and block
    /// while one elected leader performs a single commit covering the whole
    /// batch. Same guarantee as `Immediate` for acknowledged writes, at a
    /// fraction of the fsyncs per write under load.
    ///
    /// The *clean-crash* window (a kill between commits recovers the last
    /// commit) additionally requires a write-back cache (`cache_pages:
    /// Some(..)`) large enough for the un-committed working set: without
    /// one, mutations write through to the files immediately, and a kill
    /// mid-window is *detected* as corruption on reopen rather than
    /// recovered (see the module docs).
    Group {
        /// Stop gathering and commit once this many writers are pending.
        max_batch: usize,
        /// Longest a leader waits for the batch to fill before committing
        /// anyway. `Duration::ZERO` disables gathering: the leader commits
        /// at once and batches still form out of writers that queue while
        /// it fsyncs.
        max_wait: Duration,
    },
    /// Updates are acknowledged from memory only; nothing commits until an
    /// explicit `flush()` or `close()`. A kill before that recovers the
    /// last committed state — provided a write-back cache (`cache_pages:
    /// Some(..)`) holds the un-committed working set; without one, the
    /// written-through pages make a kill between commits a *detected*
    /// corruption rather than a clean recovery. For bulk loads.
    FlushOnClose,
}

impl DurabilityPolicy {
    /// A group-commit configuration with sensible defaults: batches cap at
    /// 32 writers and a leader waits at most 500 µs for the batch to fill.
    pub fn group() -> DurabilityPolicy {
        DurabilityPolicy::Group {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
        }
    }

    /// Short lower-case label, as reported in experiment rows.
    pub fn label(&self) -> &'static str {
        match self {
            DurabilityPolicy::Immediate => "immediate",
            DurabilityPolicy::Group { .. } => "group",
            DurabilityPolicy::FlushOnClose => "flush-on-close",
        }
    }
}

/// Fault-injection points inside the commit pipeline, for the
/// crash-consistency tests: an armed point makes the next `commit_shard`
/// fail *after* completing the named stage, simulating a kill between
/// stages. Combined with `std::mem::forget` of the engine (so no `Drop`
/// cleanup runs), reopening the directory then exercises exactly the states
/// a real crash leaves behind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitCrashPoint {
    /// Fail before any commit work: no page, header or manifest write
    /// happens. With a write-back cache the files stay at the last commit.
    BeforeCommit,
    /// Fail after the heap-directory write and cache flush, before the
    /// headers are synced: data pages are rewritten in place under the old
    /// epoch and manifest.
    AfterPageFlush,
    /// Fail after both pager files are synced at the new epoch, before the
    /// manifest is saved — the classic pages-ahead-of-manifest crash.
    AfterHeaderSync,
}

/// One party's file-backed store: the raw pager (what gets synced and holds
/// the header + page-directory pages) and the store the trees run on (the
/// pager itself, or a write-back [`CachedPager`] over it).
pub(crate) struct PartyFiles {
    pager: Arc<FilePager>,
    cache: Option<Arc<CachedPager>>,
    store: SharedPageStore,
}

impl PartyFiles {
    fn wrap(pager: Arc<FilePager>, cache_pages: Option<usize>, policy: DurabilityPolicy) -> Self {
        let (cache, store): (_, SharedPageStore) = match cache_pages {
            Some(pages) => {
                let cache = Arc::new(CachedPager::new(
                    Arc::clone(&pager) as SharedPageStore,
                    pages,
                ));
                // Under the deferred policies the cache may hold mutations
                // that were never acknowledged; flushing them on drop would
                // tear the committed on-disk state (see the module docs).
                if policy != DurabilityPolicy::Immediate {
                    cache.set_flush_on_drop(false);
                }
                (Some(Arc::clone(&cache)), cache)
            }
            None => (None, Arc::clone(&pager) as SharedPageStore),
        };
        PartyFiles {
            pager,
            cache,
            store,
        }
    }

    fn flush(&self) -> StorageResult<()> {
        if let Some(cache) = &self.cache {
            cache.flush()?;
        }
        Ok(())
    }

    /// Durability barrier through the party's store, so the fsync is
    /// counted where the engines' per-party accounting reads it (the cache
    /// mirrors its backing pager's barrier).
    fn sync(&self) -> StorageResult<()> {
        self.store.sync()
    }
}

/// Per-shard commit state, serialized under one mutex so two commits of the
/// same shard can never interleave their header/epoch writes.
struct ShardCommitState {
    epoch: u64,
    heap_dir: PageDirectory,
}

/// Group-commit bookkeeping of one shard. Tickets are issued by writers
/// while they still hold the shard's write locks, so any commit performed
/// under the shard's (read or write) locks covers every ticket issued
/// before it started.
#[derive(Default)]
struct GroupQueue {
    /// Tickets issued so far.
    queued: u64,
    /// Highest ticket covered by a durable commit.
    durable: u64,
    /// Whether a leader is currently gathering or committing.
    leader: bool,
    /// Highest ticket covered by a *failed* commit (unless a later success
    /// caught up past it — `durable` is always checked first).
    failed_through: u64,
    /// Why that batch failed.
    fail_msg: String,
}

/// A commit caught between its two phases: the snapshot is flushed to the
/// files and the manifest meta captured ([`Durability::prepare_commit`],
/// under the shard's tree locks), but the headers, fsyncs and manifest save
/// ([`Durability::finish_commit`]) are still to run — without tree locks,
/// so writers queue the next batch meanwhile. Holding the commit-state
/// guard keeps any other commit of the shard from starting in between.
pub(crate) struct PreparedCommit<'a> {
    shard_idx: usize,
    state: MutexGuard<'a, ShardCommitState>,
    cover: u64,
    meta: ShardMeta,
}

/// One shard's durable storage: both parties' files plus the commit state.
pub(crate) struct ShardFiles {
    upper: u32,
    sp: PartyFiles,
    te: PartyFiles,
    state: Mutex<ShardCommitState>,
    group: StdMutex<GroupQueue>,
    group_cv: Condvar,
}

/// The in-memory manifest plus the coalescing-save bookkeeping. Commits
/// publish their `ShardMeta` here (bumping `seq`) and one elected saver
/// persists a snapshot covering every published update; the manifest page
/// is cumulative, so a save at `seq = t` subsumes every earlier update.
struct ManifestState {
    manifest: Manifest,
    /// Updates published into `manifest` so far.
    seq: u64,
    /// Highest update covered by a successful save.
    saved: u64,
    /// Whether a saver is currently writing a snapshot.
    saving: bool,
    /// Highest update covered by a failed save (checked after `saved`).
    failed_through: u64,
    /// Why that save failed.
    fail_msg: String,
}

/// The stores a deployment builds (or reopens) its trees on; cloned out of
/// [`Durability`] so the engine can wire them under its parties.
pub(crate) struct ShardStores {
    pub sp_store: SharedPageStore,
    pub sp_cache: Option<Arc<CachedPager>>,
    pub te_store: SharedPageStore,
}

/// Everything [`Durability::open`] recovers about one shard before the trees
/// are reopened.
pub(crate) struct RecoveredShard {
    pub meta: ShardMeta,
    pub heap_pages: Vec<PageId>,
}

/// The durable backing of a deployment directory. See the module docs for
/// the file layout and commit protocol.
pub(crate) struct Durability {
    manifest_path: PathBuf,
    mstate: StdMutex<ManifestState>,
    mcv: Condvar,
    shards: Vec<ShardFiles>,
    policy: DurabilityPolicy,
    crash: Mutex<Option<CommitCrashPoint>>,
    /// Simulated barrier latency (µs) mirrored onto the manifest save, so
    /// the whole deployment models one device (see
    /// [`FilePager::set_sync_delay_micros`]).
    sync_delay_micros: std::sync::atomic::AtomicU64,
}

fn sp_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("{}-{shard}.pages", Party::Sp.prefix()))
}

fn te_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("{}-{shard}.pages", Party::Te.prefix()))
}

fn placeholder_meta(upper: u32) -> ShardMeta {
    let empty = TreeMeta {
        root: PageId::INVALID,
        height: 0,
        len: 0,
        node_count: 0,
    };
    ShardMeta {
        upper,
        epoch: 0,
        sp_index: empty,
        heap_record_count: 0,
        heap_page_count: 0,
        heap_dir_head: PageId::INVALID,
        te_tree: empty,
        te_digest: [0u8; sae_storage::TE_DIGEST_LEN],
    }
}

/// `std::sync` lock acquisition with `parking_lot` semantics: a panic while
/// holding the lock does not poison it for everyone else.
fn lock_unpoisoned<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clears a single-occupancy protocol flag (`GroupQueue::leader`,
/// `ManifestState::saving`) and wakes the condvar's waiters if the guarded
/// section *unwinds*. The flags survive a panic that `lock_unpoisoned`
/// shrugs off; without this, a panicking leader or saver would leave its
/// flag set forever and every later writer would block on the condvar —
/// a silent hang instead of a propagated panic. The normal path disarms
/// the guard and publishes its outcome under the lock itself.
struct UnwindFlagGuard<'a, T> {
    m: &'a StdMutex<T>,
    cv: &'a Condvar,
    clear: fn(&mut T),
    armed: bool,
}

impl<T> UnwindFlagGuard<'_, T> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl<T> Drop for UnwindFlagGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            let mut state = lock_unpoisoned(self.m);
            (self.clear)(&mut state);
            drop(state);
            self.cv.notify_all();
        }
    }
}

fn batch_error(context: &str, msg: &str) -> StorageError {
    StorageError::Io(std::io::Error::other(format!("{context}: {msg}")))
}

/// Creates one party's pager file with its identity header at page 0.
fn create_party_file(path: &Path, shard: usize, party: Party) -> StorageResult<Arc<FilePager>> {
    let pager = Arc::new(FilePager::create(path)?);
    let header_page = pager.allocate()?;
    debug_assert_eq!(header_page, SHARD_HEADER_PAGE);
    let header = ShardHeader {
        shard: shard as u32,
        party,
        epoch: 0,
    };
    pager.write(SHARD_HEADER_PAGE, &header.encode())?;
    Ok(pager)
}

/// Opens one party's pager file, validating its identity and epoch against
/// the manifest. A missing file is reported as corruption (the deployment
/// directory is incomplete), not a bare I/O error.
fn open_party_file(
    path: &Path,
    shard: usize,
    party: Party,
    manifest_epoch: u64,
) -> StorageResult<Arc<FilePager>> {
    let pager = FilePager::open(path).map_err(|e| match e {
        StorageError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => {
            StorageError::Corrupted(format!(
                "deployment is missing shard file {}",
                path.display()
            ))
        }
        other => other,
    })?;
    let pager = Arc::new(pager);
    ShardHeader::validate(pager.as_ref(), shard as u32, party, manifest_epoch)?;
    Ok(pager)
}

impl Durability {
    /// Creates the deployment directory layout for a fresh deployment:
    /// per-shard pager files with identity headers and empty heap page
    /// directories, plus an in-memory manifest that the first
    /// [`Durability::commit_shard`] calls will fill and persist.
    pub(crate) fn create(
        dir: &Path,
        uppers: &[u32],
        record_size: usize,
        cache_pages: Option<usize>,
        policy: DurabilityPolicy,
    ) -> StorageResult<Durability> {
        // Fail fast on a layout the manifest page cannot describe, before
        // any file is created or bulk load starts.
        if uppers.len() > sae_storage::manifest::MAX_MANIFEST_SHARDS {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "a durable deployment supports at most {} shards, got {}",
                    sae_storage::manifest::MAX_MANIFEST_SHARDS,
                    uppers.len()
                ),
            )));
        }
        // The manifest's domain is the last shard's upper bound, so an empty
        // layout is unrepresentable; reject it with a typed error.
        let Some(&domain) = uppers.last() else {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a durable deployment needs at least one shard",
            )));
        };
        // Refuse to zero an existing deployment: `FilePager::create`
        // truncates, so re-running a creation script against a live
        // directory would destroy committed data before anyone noticed.
        if dir.join(MANIFEST_FILE).exists() {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!(
                    "a deployment already exists at {} — reopen it with open_dir, or remove \
                     the directory to recreate it",
                    dir.display()
                ),
            )));
        }
        std::fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(uppers.len());
        for (i, &upper) in uppers.iter().enumerate() {
            let sp_pager = create_party_file(&sp_path(dir, i), i, Party::Sp)?;
            let te_pager = create_party_file(&te_path(dir, i), i, Party::Te)?;
            // The heap page directory lives right after the SP header, and is
            // always accessed through the raw pager so the write-back cache
            // never holds a competing copy.
            let (heap_dir, _head) = PageDirectory::create(sp_pager.as_ref())?;
            shards.push(ShardFiles {
                upper,
                sp: PartyFiles::wrap(sp_pager, cache_pages, policy),
                te: PartyFiles::wrap(te_pager, cache_pages, policy),
                state: Mutex::new(ShardCommitState { epoch: 0, heap_dir }),
                group: StdMutex::new(GroupQueue::default()),
                group_cv: Condvar::new(),
            });
        }
        let manifest = Manifest {
            record_size: record_size as u32,
            domain,
            shards: uppers.iter().map(|&u| placeholder_meta(u)).collect(),
        };
        Ok(Durability {
            manifest_path: dir.join(MANIFEST_FILE),
            mstate: StdMutex::new(ManifestState {
                manifest,
                seq: 0,
                saved: 0,
                saving: false,
                failed_through: 0,
                fail_msg: String::new(),
            }),
            mcv: Condvar::new(),
            shards,
            policy,
            crash: Mutex::new(None),
            sync_delay_micros: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Reopens a deployment directory: loads and validates the manifest,
    /// opens every pager file (validating identity headers and commit
    /// epochs) and recovers each shard's heap page table. The trees are then
    /// reopened by the caller from the returned [`RecoveredShard`] metas.
    pub(crate) fn open(
        dir: &Path,
        cache_pages: Option<usize>,
        policy: DurabilityPolicy,
    ) -> StorageResult<(Durability, Vec<RecoveredShard>)> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = Manifest::load(&manifest_path)?;
        let mut shards = Vec::with_capacity(manifest.shards.len());
        let mut recovered = Vec::with_capacity(manifest.shards.len());
        for (i, meta) in manifest.shards.iter().enumerate() {
            let sp_pager = open_party_file(&sp_path(dir, i), i, Party::Sp, meta.epoch)?;
            let te_pager = open_party_file(&te_path(dir, i), i, Party::Te, meta.epoch)?;
            let (heap_dir, heap_pages) =
                PageDirectory::open(sp_pager.as_ref(), meta.heap_dir_head, meta.heap_page_count)?;
            shards.push(ShardFiles {
                upper: meta.upper,
                sp: PartyFiles::wrap(sp_pager, cache_pages, policy),
                te: PartyFiles::wrap(te_pager, cache_pages, policy),
                state: Mutex::new(ShardCommitState {
                    epoch: meta.epoch,
                    heap_dir,
                }),
                group: StdMutex::new(GroupQueue::default()),
                group_cv: Condvar::new(),
            });
            recovered.push(RecoveredShard {
                meta: meta.clone(),
                heap_pages,
            });
        }
        Ok((
            Durability {
                manifest_path,
                mstate: StdMutex::new(ManifestState {
                    manifest,
                    seq: 0,
                    saved: 0,
                    saving: false,
                    failed_through: 0,
                    fail_msg: String::new(),
                }),
                mcv: Condvar::new(),
                shards,
                policy,
                crash: Mutex::new(None),
                sync_delay_micros: std::sync::atomic::AtomicU64::new(0),
            },
            recovered,
        ))
    }

    /// Number of shards the directory holds.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The fixed record length the manifest records.
    pub(crate) fn record_size(&self) -> usize {
        lock_unpoisoned(&self.mstate).manifest.record_size as usize
    }

    /// The durability policy this deployment runs.
    pub(crate) fn policy(&self) -> DurabilityPolicy {
        self.policy
    }

    /// Arms (or clears) a commit-pipeline fault-injection point.
    pub(crate) fn set_crash_point(&self, point: Option<CommitCrashPoint>) {
        *self.crash.lock() = point;
    }

    /// Sets a simulated per-fsync latency on every shard's pager files and
    /// on the manifest save (see [`FilePager::set_sync_delay_micros`]).
    pub(crate) fn set_sync_delay_micros(&self, micros: u64) {
        for shard in &self.shards {
            shard.sp.pager.set_sync_delay_micros(micros);
            shard.te.pager.set_sync_delay_micros(micros);
        }
        self.sync_delay_micros
            .store(micros, std::sync::atomic::Ordering::Relaxed);
    }

    /// The simulated barrier latency applied after a manifest save.
    fn manifest_sync_delay(&self) {
        let micros = self
            .sync_delay_micros
            .load(std::sync::atomic::Ordering::Relaxed);
        if micros > 0 {
            std::thread::sleep(Duration::from_micros(micros));
        }
    }

    fn crash_check(&self, point: CommitCrashPoint) -> StorageResult<()> {
        if *self.crash.lock() == Some(point) {
            return Err(StorageError::Io(std::io::Error::other(format!(
                "injected crash at {point:?}"
            ))));
        }
        Ok(())
    }

    /// Shard `i`'s files. Every shard index handled by the durability layer
    /// comes from the deployment that constructed it, so the bound always
    /// holds; funneling the one slice access through here keeps the commit
    /// paths free of panicking operations everywhere else.
    fn shard(&self, i: usize) -> &ShardFiles {
        // analyzer:allow(panic-free-commit, shard indices come from the owning deployment and are in range by construction)
        &self.shards[i]
    }

    /// Clones shard `i`'s stores so the deployment can build or reopen its
    /// trees on them.
    pub(crate) fn stores(&self, i: usize) -> ShardStores {
        let shard = self.shard(i);
        ShardStores {
            sp_store: Arc::clone(&shard.sp.store),
            sp_cache: shard.sp.cache.clone(),
            te_store: Arc::clone(&shard.te.store),
        }
    }

    /// Issues a commit ticket for shard `i`. **Must be called while holding
    /// the shard's write locks** (or with otherwise-exclusive access): the
    /// group-commit protocol relies on "ticket issued under write locks,
    /// commit performed under read locks" to guarantee that a commit covers
    /// every ticket issued before it started.
    // A dropped ticket is never waited on: the write would silently lose its
    // durability guarantee, so losing the return value is always a bug.
    #[must_use]
    pub(crate) fn announce(&self, i: usize) -> u64 {
        let shard = self.shard(i);
        let mut q = lock_unpoisoned(&shard.group);
        q.queued += 1;
        let ticket = q.queued;
        drop(q);
        // Wake a leader that may be gathering its batch.
        shard.group_cv.notify_all();
        ticket
    }

    /// Blocks until a commit covering `ticket` is durable, electing this
    /// caller as the batch leader when no commit is in flight. `commit` must
    /// acquire the shard's read locks and run [`Durability::commit_shard`];
    /// it is invoked at most once per leadership stint.
    pub(crate) fn wait_durable(
        &self,
        i: usize,
        ticket: u64,
        commit: impl Fn() -> StorageResult<()>,
    ) -> StorageResult<()> {
        let shard = self.shard(i);
        let (max_batch, max_wait) = match self.policy {
            DurabilityPolicy::Group {
                max_batch,
                max_wait,
            } => (max_batch.max(1) as u64, max_wait),
            _ => (1, Duration::ZERO),
        };
        let mut q = lock_unpoisoned(&shard.group);
        loop {
            if q.durable >= ticket {
                return Ok(());
            }
            if q.failed_through >= ticket {
                return Err(batch_error(
                    "group commit failed for this write's batch",
                    &q.fail_msg,
                ));
            }
            if q.leader {
                q = shard.group_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Become the leader: optionally gather a batch, then run ONE
            // commit for everything queued. The group lock is never held
            // while the shard's locks are acquired (the commit closure runs
            // lock-free here), so the lock order stays acyclic.
            q.leader = true;
            if !max_wait.is_zero() {
                let deadline = Instant::now() + max_wait;
                while q.queued.saturating_sub(q.durable) < max_batch {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = shard
                        .group_cv
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    q = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            drop(q);
            // If `commit` panics (tree code, fault injection), leadership
            // must still be released or the shard's writers hang forever.
            let leader_guard = UnwindFlagGuard {
                m: &shard.group,
                cv: &shard.group_cv,
                clear: |q: &mut GroupQueue| q.leader = false,
                armed: true,
            };
            // commit_shard snapshots how many tickets it covers and
            // publishes the outcome to the queue itself.
            let result = commit();
            leader_guard.disarm();
            q = lock_unpoisoned(&shard.group);
            q.leader = false;
            drop(q);
            shard.group_cv.notify_all();
            // The leader's own ticket predates its commit, so the commit
            // covered it: report our own failure directly (commit_shard has
            // already marked the batch failed for the followers).
            result?;
            q = lock_unpoisoned(&shard.group);
        }
    }

    /// Commits shard `i`'s current state in the documented order (pages,
    /// headers + sync, then manifest). The caller must hold the shard's
    /// locks (read locks suffice — and are what `flush()` holds) so
    /// `sp`/`te` cannot change mid-commit. Covers, and on completion
    /// releases or fails, every group-commit ticket issued before it
    /// started.
    ///
    /// The group-commit leader uses the split form —
    /// [`Durability::prepare_commit`] under the read locks, then
    /// [`Durability::finish_commit`] after releasing them — so same-shard
    /// writers can mutate (and queue the next batch) while this batch's
    /// fsyncs and manifest save run.
    pub(crate) fn commit_shard(
        &self,
        i: usize,
        sp: &SaeServiceProvider,
        te: &TrustedEntity,
    ) -> StorageResult<()> {
        let prepared = self.prepare_commit(i, sp, te)?;
        self.finish_commit(prepared)
    }

    /// Publishes a finished (or failed) commit's outcome to the shard's
    /// group queue, releasing or failing every covered ticket.
    fn publish_group_outcome<T>(&self, i: usize, cover: u64, result: &StorageResult<T>) {
        let shard = self.shard(i);
        let mut q = lock_unpoisoned(&shard.group);
        match result {
            Ok(_) => q.durable = q.durable.max(cover),
            Err(e) => {
                if cover > q.durable {
                    q.failed_through = q.failed_through.max(cover);
                    q.fail_msg = e.to_string();
                }
            }
        }
        drop(q);
        shard.group_cv.notify_all();
    }

    /// Commit phase 1, under the shard's (at least read) locks: write the
    /// heap page table, flush the write-back caches so every data page of
    /// the snapshot is in the file, and capture the manifest meta. The
    /// returned token holds the shard's commit-state lock, so no other
    /// commit of this shard can start until [`Durability::finish_commit`]
    /// completes — but the *tree* locks can be released as soon as this
    /// returns: the snapshot is fully in the file and the meta fully
    /// captured, so later in-memory mutations (which stay in the cache
    /// until their own commit) cannot leak into it.
    pub(crate) fn prepare_commit<'a>(
        &'a self,
        i: usize,
        sp: &SaeServiceProvider,
        te: &TrustedEntity,
    ) -> StorageResult<PreparedCommit<'a>> {
        let shard = self.shard(i);
        // The state lock is held from here through finish_commit, including
        // the covering manifest save: if the manifest were written outside
        // it, two concurrent commits of the same shard (e.g. two `flush()`
        // calls, which only take read locks) could invert at the manifest
        // and persist an older epoch after a newer one — leaving the pager
        // headers permanently ahead of the manifest, i.e. a deployment that
        // can never open again. Lock order is state(i) → group(i) →
        // manifest, everywhere.
        let mut state = shard.state.lock();
        // Tickets issued before this point were issued under the shard's
        // write locks; our caller holds at least the read locks, so all of
        // those mutations are visible to this commit, which therefore
        // covers them.
        let cover = lock_unpoisoned(&shard.group).queued;
        let epoch = state.epoch + 1;
        let staged = (|| -> StorageResult<ShardMeta> {
            self.crash_check(CommitCrashPoint::BeforeCommit)?;

            // 1. Heap page table, written through the raw pager (only the
            //    chain pages whose content changed).
            state
                .heap_dir
                .write(shard.sp.pager.as_ref(), sp.heap().pages())?;

            // 2. Every data page out of the write-back caches, in ascending
            //    page-id order.
            shard.sp.flush()?;
            shard.te.flush()?;
            self.crash_check(CommitCrashPoint::AfterPageFlush)?;

            Ok(ShardMeta {
                upper: shard.upper,
                epoch,
                sp_index: sp.index().meta(),
                heap_record_count: sp.heap().record_count(),
                heap_page_count: sp.heap().pages().len() as u64,
                heap_dir_head: state.heap_dir.head(),
                te_tree: te.tree().meta(),
                te_digest: *te.tree().total_xor()?.as_bytes(),
            })
        })();
        if staged.is_err() {
            self.publish_group_outcome(i, cover, &staged);
        }
        let meta = staged?;
        Ok(PreparedCommit {
            shard_idx: i,
            state,
            cover,
            meta,
        })
    }

    /// Commit phase 2, requiring no tree locks: rewrite both identity
    /// headers at the new epoch, fsync both files, then publish the meta
    /// into the manifest and wait for a covering save. Consumes the token
    /// from [`Durability::prepare_commit`] (and with it the commit-state
    /// lock) and releases or fails every covered group ticket.
    pub(crate) fn finish_commit(&self, prepared: PreparedCommit<'_>) -> StorageResult<()> {
        let PreparedCommit {
            shard_idx: i,
            mut state,
            cover,
            meta,
        } = prepared;
        let shard = self.shard(i);
        let result = (|| -> StorageResult<()> {
            // 3. Headers carry the new epoch; both files hit stable storage
            //    before the manifest that describes them. One header write
            //    and one fsync per file — per *batch*, under group commit.
            for (files, party) in [(&shard.sp, Party::Sp), (&shard.te, Party::Te)] {
                let header = ShardHeader {
                    shard: i as u32,
                    party,
                    epoch: meta.epoch,
                };
                files.pager.write(SHARD_HEADER_PAGE, &header.encode())?;
                files.sync()?;
            }
            state.epoch = meta.epoch;
            self.crash_check(CommitCrashPoint::AfterHeaderSync)?;

            // 4. Publish into the in-memory manifest and wait for a
            //    covering save — ours, or a concurrent committer's whose
            //    snapshot already includes our update.
            self.publish_manifest(i, meta.clone())
        })();
        self.publish_group_outcome(i, cover, &result);
        drop(state);
        result
    }

    /// Publishes shard `i`'s new meta into the in-memory manifest and
    /// returns once a manifest image containing it is durably saved.
    ///
    /// Under [`DurabilityPolicy::Immediate`] every commit performs its own
    /// save while holding the manifest lock — the PR 4 semantics the policy
    /// name promises, with every shard serializing on the one manifest
    /// file. Under the deferred policies one saver runs at a time and
    /// everyone else piggybacks on the next covering snapshot: N concurrent
    /// shard commits cost one temp+rename+fsync instead of N.
    fn publish_manifest(&self, i: usize, meta: ShardMeta) -> StorageResult<()> {
        let mut st = lock_unpoisoned(&self.mstate);
        match st.manifest.shards.get_mut(i) {
            Some(slot) => *slot = meta,
            None => {
                return Err(StorageError::Io(std::io::Error::other(format!(
                    "manifest has no slot for shard {i}"
                ))));
            }
        }
        st.seq += 1;
        let my = st.seq;
        if self.policy == DurabilityPolicy::Immediate {
            let snapshot = st.manifest.clone();
            let result = snapshot.save(&self.manifest_path);
            if result.is_ok() {
                st.saved = st.saved.max(my);
                self.manifest_sync_delay();
            }
            return result;
        }
        loop {
            if st.saved >= my {
                return Ok(());
            }
            if st.failed_through >= my {
                return Err(batch_error(
                    "manifest save failed for this commit's batch",
                    &st.fail_msg,
                ));
            }
            if st.saving {
                st = self.mcv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.saving = true;
            let target = st.seq;
            let snapshot = st.manifest.clone();
            drop(st);
            // If the save panics, the saver flag must still be released or
            // every later committer hangs on the condvar.
            let saver_guard = UnwindFlagGuard {
                m: &self.mstate,
                cv: &self.mcv,
                clear: |st: &mut ManifestState| st.saving = false,
                armed: true,
            };
            let result = snapshot.save(&self.manifest_path);
            if result.is_ok() {
                self.manifest_sync_delay();
            }
            saver_guard.disarm();
            st = lock_unpoisoned(&self.mstate);
            st.saving = false;
            match result {
                Ok(()) => st.saved = st.saved.max(target),
                Err(e) => {
                    if target > st.saved {
                        st.failed_through = st.failed_through.max(target);
                        st.fail_msg = e.to_string();
                    }
                    drop(st);
                    self.mcv.notify_all();
                    // The saver's own update is inside the failed snapshot;
                    // report the original error.
                    return Err(e);
                }
            }
            drop(st);
            self.mcv.notify_all();
            st = lock_unpoisoned(&self.mstate);
        }
    }

    /// The published digest conversion used when reopening a trusted entity.
    pub(crate) fn digest_of(meta: &ShardMeta) -> Digest {
        Digest::new(meta.te_digest)
    }

    /// Best-effort flush of every cache and pager file, swallowing errors —
    /// this is what `Drop` runs under [`DurabilityPolicy::Immediate`], where
    /// the cache contents match the last commit (modulo a failed-commit
    /// window). Under the deferred policies the caches may hold
    /// unacknowledged mutations, and flushing those would overwrite
    /// committed pages with state the manifest does not describe — so drop
    /// leaves the files exactly at their last commit instead.
    fn sync_best_effort(&self) {
        if self.policy != DurabilityPolicy::Immediate {
            return;
        }
        for shard in &self.shards {
            let _ = shard.sp.flush();
            let _ = shard.te.flush();
            let _ = shard.sp.sync();
            let _ = shard.te.sync();
        }
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        self.sync_best_effort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_file_round_trip_and_identity_checks() {
        let dir = tempfile::tempdir().unwrap();
        let path = sp_path(dir.path(), 0);
        let pager = create_party_file(&path, 0, Party::Sp).unwrap();
        pager.sync().unwrap();
        drop(pager);

        // Reopen with the matching identity and epoch.
        let pager = open_party_file(&path, 0, Party::Sp, 0).unwrap();
        drop(pager);
        // Wrong shard index, wrong party, and a missing file are corruption.
        assert!(matches!(
            open_party_file(&path, 1, Party::Sp, 0),
            Err(StorageError::Corrupted(_))
        ));
        assert!(matches!(
            open_party_file(&path, 0, Party::Te, 0),
            Err(StorageError::Corrupted(_))
        ));
        assert!(matches!(
            open_party_file(&te_path(dir.path(), 0), 0, Party::Te, 0),
            Err(StorageError::Corrupted(_))
        ));
        // A file ahead of the manifest is a stale manifest.
        let pager = Arc::new(FilePager::open(&path).unwrap());
        pager
            .write(
                SHARD_HEADER_PAGE,
                &ShardHeader {
                    shard: 0,
                    party: Party::Sp,
                    epoch: 5,
                }
                .encode(),
            )
            .unwrap();
        drop(pager);
        assert!(matches!(
            open_party_file(&path, 0, Party::Sp, 4),
            Err(StorageError::StaleManifest { .. })
        ));
    }

    #[test]
    fn policy_labels_and_defaults() {
        assert_eq!(DurabilityPolicy::default(), DurabilityPolicy::Immediate);
        assert_eq!(DurabilityPolicy::Immediate.label(), "immediate");
        assert_eq!(DurabilityPolicy::group().label(), "group");
        assert_eq!(DurabilityPolicy::FlushOnClose.label(), "flush-on-close");
        match DurabilityPolicy::group() {
            DurabilityPolicy::Group { max_batch, .. } => assert!(max_batch > 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
