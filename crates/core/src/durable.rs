//! The durable storage layer under [`crate::sae::SaeSystem`] and
//! [`crate::sharded::ShardedSaeEngine`].
//!
//! A durable deployment lives in one directory:
//!
//! ```text
//! deployment/
//!   MANIFEST        one checksummed page: layout bounds, record size,
//!                   per-shard tree roots + shapes, heap geometry,
//!                   commit epochs, published TE digests
//!   sp-0.pages      shard 0's service provider (heap file + B⁺-Tree)
//!   te-0.pages      shard 0's trusted entity (XB-Tree)
//!   wal-0.log       shard 0's write-ahead log
//!   sp-1.pages ...  one pager-file trio per shard
//! ```
//!
//! Page 0 of every pager file is a [`ShardHeader`]: the file's identity
//! (shard index + party, so a swapped or renamed file is rejected at open)
//! and its last *checkpointed* epoch. Every committed update follows the
//! same order — **log before pages**:
//!
//! 1. the heap page table is rewritten into its [`PageDirectory`] chain
//!    *through the write-back cache*, so the changed chain pages join the
//!    commit's write set like any tree page,
//! 2. the transaction — `Begin`, the after-image of every page written
//!    since the last commit, the heap page table's new entries, and a
//!    `Commit` record carrying the full [`ShardMeta`] (roots, shapes,
//!    published TE digest) — is appended to `wal-<i>.log`,
//! 3. the log is fsynced: **that single barrier is the acknowledgement**.
//!    No tree lock is held across it, and no page file was touched.
//!
//! Data pages reach `sp-<i>.pages` / `te-<i>.pages` only at a *checkpoint*:
//! when the log grows past a threshold (or on explicit `flush()`/`close()`),
//! the committing writer additionally flushes the caches, rewrites both
//! identity headers at the new epoch with a durability barrier each, saves
//! a covering manifest, and truncates the log to a fresh segment. The
//! caches run in no-steal mode, so an *uncommitted* mutation can never
//! overwrite a committed page in the files — between checkpoints the files
//! plus the log always reconstruct every acknowledged commit.
//!
//! ## Recovery
//!
//! `Durability::open` loads the manifest, then replays each shard's log:
//! the torn-tail-tolerant [`sae_storage::wal::scan_log`] yields the longest
//! valid committed prefix, whose transactions are re-applied to the page
//! files in log order (page images are absolute content, so re-applying an
//! epoch the last checkpoint already covers is idempotent). The final
//! `Commit` record's meta becomes the shard's recovered state; the reopened
//! TE is verified against its recorded digest, and the heap page table is
//! cross-checked against the logged directory entries. A crash at *any*
//! point of the commit pipeline therefore recovers every acknowledged
//! write — the pre-WAL protocol's refusals ([`StorageError::StaleManifest`]
//! and torn-state corruption on a kill between commits) remain only for
//! genuinely tampered directories, e.g. a header epoch ahead of everything
//! the log ever committed, or a log claiming epochs the manifest never
//! reached. After replay, recovery checkpoints the reconstructed state and
//! truncates the log, so reopening is idempotent.
//!
//! ## Durability policies and group commit
//!
//! *When* an accepted update runs the commit above is the
//! [`DurabilityPolicy`] knob:
//!
//! * [`DurabilityPolicy::Immediate`] — every accepted update commits (one
//!   log append + one log fsync) before it is acknowledged, and every
//!   writer pays its own barrier. The write-ahead log collapsed the old
//!   two-fsyncs-plus-manifest sequence into that single fsync, and the
//!   commit runs under the shard's *read* locks, so writers of other
//!   shards — and this shard's readers — proceed meanwhile.
//! * [`DurabilityPolicy::Group`] — classic group commit. A writer mutates
//!   its shard in memory, enqueues a commit ticket (while still holding the
//!   shard's write locks), releases the locks and blocks until a commit
//!   *covering its ticket* is durable. The first waiting writer elects
//!   itself leader, optionally gathers a batch (`max_batch` / `max_wait`)
//!   and performs **one** log append + fsync on behalf of the whole batch.
//!   An acknowledged write is durable exactly as under `Immediate`; a
//!   *failed* batch commit is reported to every covered writer, whose
//!   in-memory mutations then stand ahead of disk until the next successful
//!   commit (they cannot be unwound — later writers already built on them).
//! * [`DurabilityPolicy::FlushOnClose`] — updates are acknowledged from
//!   memory; only explicit `flush()`/`close()` calls commit (forcing a
//!   checkpoint). For bulk loads where the caller brackets durability.
//!
//! Checkpoints coalesce at the manifest: each publishes its [`ShardMeta`]
//! into the in-memory manifest and (under the deferred policies) one
//! elected saver persists a snapshot covering every publication so far. A
//! shard's commit-state lock is held across its checkpoint *and* the
//! covering save, so two commits of the same shard can never invert at the
//! manifest.
//!
//! The crate-private `Durability` type is deliberately engine-agnostic: it
//! owns the pager handles, caches, logs, commit state and manifest, while
//! the deployment types own the trees. `Drop` only runs a best-effort log
//! barrier (recording, not raising, any swallowed error — see
//! [`sae_storage::IoStats::swallowed_sync_errors`]); the deployments'
//! explicit `close()` methods run a real checkpoint and surface its errors.

use crate::sae::{SaeServiceProvider, TrustedEntity};
use parking_lot::{Mutex, MutexGuard};
use sae_crypto::Digest;
use sae_storage::wal::wal_file_name;
use sae_storage::{
    scan_log, CachedPager, FilePager, Manifest, PageDirectory, PageId, PageStore, Party,
    ShardHeader, ShardMeta, SharedPageStore, StorageError, StorageResult, TreeMeta, WalRecord,
    WalWriter, SHARD_HEADER_PAGE,
};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::{Duration, Instant};

/// File name of the deployment manifest inside a deployment directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Page budget of a party's write-back cache when the caller does not size
/// one explicitly. Durable deployments always run behind a no-steal cache —
/// log-before-pages depends on uncommitted mutations staying out of the
/// page files — so `cache_pages: None` means "default capacity", not "no
/// cache".
const DEFAULT_CACHE_PAGES: usize = 256;

/// Log size past which a commit folds a checkpoint in (page flush, header
/// and manifest republication, log truncation). 4 MiB ≈ a thousand page
/// images.
const DEFAULT_CHECKPOINT_THRESHOLD_BYTES: u64 = 4 * 1024 * 1024;

/// When a durable deployment's accepted writes reach stable storage. See
/// the [module docs](self) for the full protocol behind each mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// Every accepted update appends its transaction to the shard's
    /// write-ahead log and fsyncs the log — one durability barrier — before
    /// it is acknowledged.
    #[default]
    Immediate,
    /// Group commit: concurrent writers enqueue commit tickets and block
    /// while one elected leader appends and fsyncs a single log transaction
    /// covering the whole batch. Same guarantee as `Immediate` for
    /// acknowledged writes, at a fraction of the fsyncs per write under
    /// load.
    Group {
        /// Stop gathering and commit once this many writers are pending.
        max_batch: usize,
        /// Longest a leader waits for the batch to fill before committing
        /// anyway. `Duration::ZERO` disables gathering: the leader commits
        /// at once and batches still form out of writers that queue while
        /// it fsyncs.
        max_wait: Duration,
    },
    /// Updates are acknowledged from memory only; nothing commits until an
    /// explicit `flush()` or `close()` (which checkpoints). A kill before
    /// that recovers the last committed state. For bulk loads.
    FlushOnClose,
}

impl DurabilityPolicy {
    /// A group-commit configuration with sensible defaults: batches cap at
    /// 32 writers and a leader waits at most 500 µs for the batch to fill.
    pub fn group() -> DurabilityPolicy {
        DurabilityPolicy::Group {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
        }
    }

    /// Short lower-case label, as reported in experiment rows.
    pub fn label(&self) -> &'static str {
        match self {
            DurabilityPolicy::Immediate => "immediate",
            DurabilityPolicy::Group { .. } => "group",
            DurabilityPolicy::FlushOnClose => "flush-on-close",
        }
    }
}

/// Fault-injection points inside the commit pipeline, for the
/// crash-consistency tests: an armed point makes the next commit fail
/// *after* completing the named stage, simulating a kill between stages.
/// Combined with `std::mem::forget` of the engine (so no `Drop` cleanup
/// runs), reopening the directory then exercises exactly the states a real
/// crash leaves behind — and since the pipeline is write-ahead-logged,
/// reopening recovers every *acknowledged* write at every point; only the
/// doomed in-flight transaction's visibility varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitCrashPoint {
    /// Fail before the transaction is appended to the log: no log, page,
    /// header or manifest write happens. The doomed write is absent after
    /// recovery; everything previously acknowledged is intact.
    BeforeCommit,
    /// Fail after the transaction is fully appended to the log, before the
    /// log fsync. Under the tests' `mem::forget` crash model file writes
    /// survive, so the doomed transaction is replayed on reopen; on real
    /// hardware it may equally be torn off the tail by the scan — both
    /// outcomes recover cleanly.
    AfterPageFlush,
    /// Fail after the log fsync that makes the transaction durable, before
    /// it is acknowledged: the doomed write is present after recovery even
    /// though its writer saw an error.
    AfterHeaderSync,
}

/// One party's file-backed store: the raw pager (what a checkpoint syncs
/// and what holds the header page) and the no-steal write-back cache the
/// trees run on.
pub(crate) struct PartyFiles {
    pager: Arc<FilePager>,
    cache: Arc<CachedPager>,
    store: SharedPageStore,
}

impl PartyFiles {
    fn wrap(pager: Arc<FilePager>, cache_pages: Option<usize>) -> Self {
        let cache = Arc::new(CachedPager::new(
            Arc::clone(&pager) as SharedPageStore,
            cache_pages.unwrap_or(DEFAULT_CACHE_PAGES).max(1),
        ));
        // No-steal: a dirty page never reaches the file before its commit
        // is in the log (the cache soft-overflows its capacity instead).
        cache.set_no_steal(true);
        // Never flush on drop, under any policy: unacknowledged mutations
        // would overwrite checkpointed pages with state the log does not
        // describe, and everything acknowledged is already covered by the
        // synced log.
        cache.set_flush_on_drop(false);
        let store: SharedPageStore = Arc::clone(&cache) as SharedPageStore;
        PartyFiles {
            pager,
            cache,
            store,
        }
    }

    fn flush(&self) -> StorageResult<()> {
        self.cache.flush()
    }

    /// Durability barrier through the party's store, so the fsync is
    /// counted where the engines' per-party accounting reads it (the cache
    /// mirrors its backing pager's barrier).
    fn sync(&self) -> StorageResult<()> {
        self.store.sync()
    }
}

/// Per-shard commit state, serialized under one mutex so two commits of the
/// same shard can never interleave their log/epoch writes.
struct ShardCommitState {
    epoch: u64,
    heap_dir: PageDirectory,
    /// Heap pages already covered by logged `HeapDirEntry` records (or by
    /// the recovered checkpoint); the next commit logs only the entries
    /// past this index.
    logged_heap_len: usize,
}

/// Group-commit bookkeeping of one shard. Tickets are issued by writers
/// while they still hold the shard's write locks, so any commit performed
/// under the shard's (read or write) locks covers every ticket issued
/// before it started.
#[derive(Default)]
struct GroupQueue {
    /// Tickets issued so far.
    queued: u64,
    /// Highest ticket covered by a durable commit.
    durable: u64,
    /// Whether a leader is currently gathering or committing.
    leader: bool,
    /// Highest ticket covered by a *failed* commit (unless a later success
    /// caught up past it — `durable` is always checked first).
    failed_through: u64,
    /// Why that batch failed.
    fail_msg: String,
}

/// A commit caught between its two phases: the transaction is appended to
/// the log ([`Durability::prepare_commit`], under the shard's tree locks),
/// but the acknowledgement fsync ([`Durability::finish_commit`]) is still
/// to run — without tree locks, so writers queue the next batch meanwhile.
/// Holding the commit-state guard keeps any other commit of the shard from
/// starting in between.
pub(crate) struct PreparedCommit<'a> {
    shard_idx: usize,
    state: MutexGuard<'a, ShardCommitState>,
    cover: u64,
    meta: ShardMeta,
    /// The prepare phase folded a checkpoint in, which already carried its
    /// own barriers — the finish phase skips the log fsync.
    already_durable: bool,
}

/// One shard's durable storage: both parties' files, the write-ahead log
/// and the commit state.
pub(crate) struct ShardFiles {
    upper: u32,
    sp: PartyFiles,
    te: PartyFiles,
    wal: WalWriter,
    state: Mutex<ShardCommitState>,
    group: StdMutex<GroupQueue>,
    group_cv: Condvar,
}

/// The in-memory manifest plus the coalescing-save bookkeeping. Checkpoints
/// publish their `ShardMeta` here (bumping `seq`) and one elected saver
/// persists a snapshot covering every published update; the manifest page
/// is cumulative, so a save at `seq = t` subsumes every earlier update.
struct ManifestState {
    manifest: Manifest,
    /// Updates published into `manifest` so far.
    seq: u64,
    /// Highest update covered by a successful save.
    saved: u64,
    /// Whether a saver is currently writing a snapshot.
    saving: bool,
    /// Highest update covered by a failed save (checked after `saved`).
    failed_through: u64,
    /// Why that save failed.
    fail_msg: String,
}

/// The stores a deployment builds (or reopens) its trees on; cloned out of
/// [`Durability`] so the engine can wire them under its parties.
pub(crate) struct ShardStores {
    pub sp_store: SharedPageStore,
    pub sp_cache: Option<Arc<CachedPager>>,
    pub te_store: SharedPageStore,
}

/// Everything [`Durability::open`] recovers about one shard before the trees
/// are reopened.
pub(crate) struct RecoveredShard {
    pub meta: ShardMeta,
    pub heap_pages: Vec<PageId>,
}

/// One shard's state mid-recovery: pagers opened, log replayed, trees not
/// yet reopened and the fresh log segment not yet cut (that waits for the
/// covering manifest save).
struct ShardRecovery {
    sp_pager: Arc<FilePager>,
    te_pager: Arc<FilePager>,
    meta: ShardMeta,
    heap_dir: PageDirectory,
    heap_pages: Vec<PageId>,
    replayed: bool,
}

/// The durable backing of a deployment directory. See the module docs for
/// the file layout and commit protocol.
pub(crate) struct Durability {
    manifest_path: PathBuf,
    mstate: StdMutex<ManifestState>,
    mcv: Condvar,
    shards: Vec<ShardFiles>,
    policy: DurabilityPolicy,
    crash: Mutex<Option<CommitCrashPoint>>,
    /// Simulated barrier latency (µs) mirrored onto the manifest save, so
    /// the whole deployment models one device (see
    /// [`FilePager::set_sync_delay_micros`]).
    sync_delay_micros: std::sync::atomic::AtomicU64,
    /// Log size past which a commit folds a checkpoint in.
    checkpoint_threshold_bytes: std::sync::atomic::AtomicU64,
}

fn sp_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("{}-{shard}.pages", Party::Sp.prefix()))
}

fn te_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("{}-{shard}.pages", Party::Te.prefix()))
}

fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(wal_file_name(shard))
}

fn placeholder_meta(upper: u32) -> ShardMeta {
    let empty = TreeMeta {
        root: PageId::INVALID,
        height: 0,
        len: 0,
        node_count: 0,
    };
    ShardMeta {
        upper,
        epoch: 0,
        sp_index: empty,
        heap_record_count: 0,
        heap_page_count: 0,
        heap_dir_head: PageId::INVALID,
        te_tree: empty,
        te_digest: [0u8; sae_storage::TE_DIGEST_LEN],
    }
}

/// `std::sync` lock acquisition with `parking_lot` semantics: a panic while
/// holding the lock does not poison it for everyone else.
fn lock_unpoisoned<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clears a single-occupancy protocol flag (`GroupQueue::leader`,
/// `ManifestState::saving`) and wakes the condvar's waiters if the guarded
/// section *unwinds*. The flags survive a panic that `lock_unpoisoned`
/// shrugs off; without this, a panicking leader or saver would leave its
/// flag set forever and every later writer would block on the condvar —
/// a silent hang instead of a propagated panic. The normal path disarms
/// the guard and publishes its outcome under the lock itself.
struct UnwindFlagGuard<'a, T> {
    m: &'a StdMutex<T>,
    cv: &'a Condvar,
    clear: fn(&mut T),
    armed: bool,
}

impl<T> UnwindFlagGuard<'_, T> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl<T> Drop for UnwindFlagGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            let mut state = lock_unpoisoned(self.m);
            (self.clear)(&mut state);
            drop(state);
            self.cv.notify_all();
        }
    }
}

fn batch_error(context: &str, msg: &str) -> StorageError {
    StorageError::Io(std::io::Error::other(format!("{context}: {msg}")))
}

/// Creates one party's pager file with its identity header at page 0.
fn create_party_file(path: &Path, shard: usize, party: Party) -> StorageResult<Arc<FilePager>> {
    let pager = Arc::new(FilePager::create(path)?);
    let header_page = pager.allocate()?;
    debug_assert_eq!(header_page, SHARD_HEADER_PAGE);
    let header = ShardHeader {
        shard: shard as u32,
        party,
        epoch: 0,
    };
    pager.write(SHARD_HEADER_PAGE, &header.encode())?;
    Ok(pager)
}

/// Opens one party's pager file, validating its identity and epoch against
/// the manifest — the strict form, used when the shard has no log to judge
/// the epoch by. A missing file is reported as corruption (the deployment
/// directory is incomplete), not a bare I/O error.
fn open_party_file(
    path: &Path,
    shard: usize,
    party: Party,
    manifest_epoch: u64,
) -> StorageResult<Arc<FilePager>> {
    let pager = open_party_pager(path)?;
    ShardHeader::validate(pager.as_ref(), shard as u32, party, manifest_epoch)?;
    Ok(pager)
}

/// Opens one party's pager file checking only its *identity*, returning the
/// header so log replay can judge the epoch itself.
fn open_party_file_identity(
    path: &Path,
    shard: usize,
    party: Party,
) -> StorageResult<(Arc<FilePager>, ShardHeader)> {
    let pager = open_party_pager(path)?;
    let header = ShardHeader::validate_identity(pager.as_ref(), shard as u32, party)?;
    Ok((pager, header))
}

fn open_party_pager(path: &Path) -> StorageResult<Arc<FilePager>> {
    let pager = FilePager::open(path).map_err(|e| match e {
        StorageError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => {
            StorageError::Corrupted(format!(
                "deployment is missing shard file {}",
                path.display()
            ))
        }
        other => other,
    })?;
    Ok(Arc::new(pager))
}

/// Extends `pager` until `id` is a valid page — replay may apply images to
/// pages that were allocated after the last checkpoint and so never reached
/// the file.
fn ensure_allocated(pager: &FilePager, id: PageId) -> StorageResult<()> {
    while pager.page_count() <= id.0 {
        pager.allocate()?;
    }
    Ok(())
}

/// Replays shard `i`'s write-ahead log over its page files (if there is
/// one), recovering the last committed state. See the module docs'
/// "Recovery" section for the case analysis.
fn recover_shard(dir: &Path, i: usize, manifest_meta: &ShardMeta) -> StorageResult<ShardRecovery> {
    let wal_bytes = match std::fs::read(wal_path(dir, i)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let (seg, txs) = scan_log(&wal_bytes);

    let Some(seg) = seg else {
        // No log evidence (a pre-WAL directory, or a log torn before its
        // segment header): fall back to the strict pages-vs-manifest
        // validation — headers must match the manifest epoch exactly.
        let sp_pager = open_party_file(&sp_path(dir, i), i, Party::Sp, manifest_meta.epoch)?;
        let te_pager = open_party_file(&te_path(dir, i), i, Party::Te, manifest_meta.epoch)?;
        let (heap_dir, heap_pages) = PageDirectory::open(
            sp_pager.as_ref(),
            manifest_meta.heap_dir_head,
            manifest_meta.heap_page_count,
        )?;
        return Ok(ShardRecovery {
            sp_pager,
            te_pager,
            meta: manifest_meta.clone(),
            heap_dir,
            heap_pages,
            replayed: false,
        });
    };

    // The segment is cut by a checkpoint immediately after its covering
    // manifest save, so its base can never run ahead of the manifest.
    if seg.base_epoch > manifest_meta.epoch {
        return Err(StorageError::Corrupted(format!(
            "shard {i}: wal segment starts at epoch {} but the manifest is at epoch {} — \
             the manifest regressed behind its own checkpoint",
            seg.base_epoch, manifest_meta.epoch
        )));
    }
    // Committed epochs step by at most one (duplicates are a failed commit
    // retried at the same epoch); a gap means a committed transaction went
    // missing from a log the scan otherwise trusts.
    let mut last = seg.base_epoch;
    for tx in &txs {
        if tx.epoch > last + 1 {
            return Err(StorageError::Corrupted(format!(
                "shard {i}: wal skips from epoch {last} to epoch {} — a committed \
                 transaction is missing",
                tx.epoch
            )));
        }
        last = tx.epoch;
    }

    let (sp_pager, sp_header) = open_party_file_identity(&sp_path(dir, i), i, Party::Sp)?;
    let (te_pager, te_header) = open_party_file_identity(&te_path(dir, i), i, Party::Te)?;

    // The recovered state: the last committed transaction's meta, or the
    // manifest's when the segment is fresh.
    let meta = match txs.last() {
        Some(tx) => tx.meta.clone(),
        None => manifest_meta.clone(),
    };
    if meta.epoch < manifest_meta.epoch {
        return Err(StorageError::Corrupted(format!(
            "shard {i}: manifest is at epoch {} but the log only commits through epoch {} — \
             the manifest describes state the log never carried",
            manifest_meta.epoch, meta.epoch
        )));
    }
    if meta.upper != manifest_meta.upper {
        return Err(StorageError::Corrupted(format!(
            "shard {i}: log commits shard bound {} but the manifest says {}",
            meta.upper, manifest_meta.upper
        )));
    }

    // Replay in log order. Images are absolute page content, so re-applying
    // an epoch the last checkpoint already covers is idempotent, and a
    // later duplicate epoch simply wins.
    let replayed = !txs.is_empty();
    for tx in &txs {
        for (party, page_id, image) in &tx.pages {
            let pager = match party {
                Party::Sp => sp_pager.as_ref(),
                Party::Te => te_pager.as_ref(),
            };
            ensure_allocated(pager, *page_id)?;
            pager.write(*page_id, image)?;
        }
    }

    // A header may sit anywhere up to the recovered epoch (a checkpoint
    // that died between its barriers); *ahead* of everything the log ever
    // committed means the directory was tampered with — the classic
    // stale-manifest refusal.
    for header in [&sp_header, &te_header] {
        if header.epoch > meta.epoch {
            return Err(StorageError::StaleManifest {
                shard: i as u32,
                manifest_epoch: meta.epoch,
                file_epoch: header.epoch,
            });
        }
    }

    let (heap_dir, heap_pages) =
        PageDirectory::open(sp_pager.as_ref(), meta.heap_dir_head, meta.heap_page_count)?;
    // Cross-check the recovered heap page table against the logged
    // directory entries: heap pages are append-only, so every logged
    // (index, page) must still be in place.
    for tx in &txs {
        for (index, page_id) in &tx.heap_entries {
            match heap_pages.get(*index as usize) {
                Some(got) if got == page_id => {}
                got => {
                    return Err(StorageError::Corrupted(format!(
                        "shard {i}: log places heap page {} at index {index} but the \
                         recovered page table has {:?}",
                        page_id.0, got
                    )));
                }
            }
        }
    }

    // Recovery checkpoint, phase 1: make the replayed images durable and
    // republish the headers at the recovered epoch. The covering manifest
    // save and the log truncation happen in `Durability::open` *after*
    // every shard replayed, preserving save-before-truncate.
    if replayed {
        for (pager, party) in [(&sp_pager, Party::Sp), (&te_pager, Party::Te)] {
            let header = ShardHeader {
                shard: i as u32,
                party,
                epoch: meta.epoch,
            };
            pager.write(SHARD_HEADER_PAGE, &header.encode())?;
            pager.sync()?;
        }
    }

    Ok(ShardRecovery {
        sp_pager,
        te_pager,
        meta,
        heap_dir,
        heap_pages,
        replayed,
    })
}

impl Durability {
    /// Creates the deployment directory layout for a fresh deployment:
    /// per-shard pager files with identity headers, empty heap page
    /// directories and fresh log segments, plus an in-memory manifest that
    /// the first [`Durability::commit_shard`] calls will fill and persist.
    pub(crate) fn create(
        dir: &Path,
        uppers: &[u32],
        record_size: usize,
        cache_pages: Option<usize>,
        policy: DurabilityPolicy,
    ) -> StorageResult<Durability> {
        // Fail fast on a layout the manifest page cannot describe, before
        // any file is created or bulk load starts.
        if uppers.len() > sae_storage::manifest::MAX_MANIFEST_SHARDS {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "a durable deployment supports at most {} shards, got {}",
                    sae_storage::manifest::MAX_MANIFEST_SHARDS,
                    uppers.len()
                ),
            )));
        }
        // The manifest's domain is the last shard's upper bound, so an empty
        // layout is unrepresentable; reject it with a typed error.
        let Some(&domain) = uppers.last() else {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a durable deployment needs at least one shard",
            )));
        };
        // Refuse to zero an existing deployment: `FilePager::create`
        // truncates, so re-running a creation script against a live
        // directory would destroy committed data before anyone noticed.
        if dir.join(MANIFEST_FILE).exists() {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!(
                    "a deployment already exists at {} — reopen it with open_dir, or remove \
                     the directory to recreate it",
                    dir.display()
                ),
            )));
        }
        std::fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(uppers.len());
        for (i, &upper) in uppers.iter().enumerate() {
            let sp_pager = create_party_file(&sp_path(dir, i), i, Party::Sp)?;
            let te_pager = create_party_file(&te_path(dir, i), i, Party::Te)?;
            let sp = PartyFiles::wrap(sp_pager, cache_pages);
            let te = PartyFiles::wrap(te_pager, cache_pages);
            // The heap page directory lives right after the SP header, and
            // is accessed through the cache so its chain-page mutations join
            // the write set and are logged like any other page.
            let (heap_dir, _head) = PageDirectory::create(sp.store.as_ref())?;
            // The log shares the SP store's stats, so its appends and
            // fsyncs land in the same per-party accounting the engines and
            // experiments read.
            let wal = WalWriter::create(wal_path(dir, i), 0, sp.store.stats())?;
            shards.push(ShardFiles {
                upper,
                sp,
                te,
                wal,
                state: Mutex::new(ShardCommitState {
                    epoch: 0,
                    heap_dir,
                    logged_heap_len: 0,
                }),
                group: StdMutex::new(GroupQueue::default()),
                group_cv: Condvar::new(),
            });
        }
        let manifest = Manifest {
            record_size: record_size as u32,
            domain,
            checkpoint_seq: 0,
            shards: uppers.iter().map(|&u| placeholder_meta(u)).collect(),
        };
        Ok(Durability {
            manifest_path: dir.join(MANIFEST_FILE),
            mstate: StdMutex::new(ManifestState {
                manifest,
                seq: 0,
                saved: 0,
                saving: false,
                failed_through: 0,
                fail_msg: String::new(),
            }),
            mcv: Condvar::new(),
            shards,
            policy,
            crash: Mutex::new(None),
            sync_delay_micros: std::sync::atomic::AtomicU64::new(0),
            checkpoint_threshold_bytes: std::sync::atomic::AtomicU64::new(
                DEFAULT_CHECKPOINT_THRESHOLD_BYTES,
            ),
        })
    }

    /// Reopens a deployment directory: loads and validates the manifest,
    /// opens every pager file (validating identity headers), replays each
    /// shard's write-ahead log past the last checkpoint and recovers each
    /// shard's heap page table. If anything replayed, the recovered state
    /// is checkpointed (headers, manifest) and the logs are truncated, so
    /// reopening is idempotent. The trees are then reopened by the caller
    /// from the returned [`RecoveredShard`] metas — which is where the
    /// replayed TE is verified against the last `Commit` record's digest.
    pub(crate) fn open(
        dir: &Path,
        cache_pages: Option<usize>,
        policy: DurabilityPolicy,
    ) -> StorageResult<(Durability, Vec<RecoveredShard>)> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let mut manifest = Manifest::load(&manifest_path)?;
        let mut recoveries = Vec::with_capacity(manifest.shards.len());
        let mut any_replayed = false;
        for (i, slot) in manifest.shards.iter_mut().enumerate() {
            let rec = recover_shard(dir, i, slot)?;
            any_replayed |= rec.replayed;
            // The in-memory (and, below, the saved) manifest adopts the
            // recovered metas, so later checkpoints build on them.
            *slot = rec.meta.clone();
            recoveries.push(rec);
        }
        // Recovery checkpoint, phase 2: one covering manifest save — after
        // every shard's headers are durable, before any log is truncated.
        if any_replayed {
            manifest.checkpoint_seq += 1;
            manifest.save(&manifest_path)?;
        }
        let mut shards = Vec::with_capacity(recoveries.len());
        let mut recovered = Vec::with_capacity(recoveries.len());
        for (i, rec) in recoveries.into_iter().enumerate() {
            let sp = PartyFiles::wrap(rec.sp_pager, cache_pages);
            let te = PartyFiles::wrap(rec.te_pager, cache_pages);
            // Everything the old log carried is checkpointed now; cut a
            // fresh segment (atomically — a crash here leaves the old log,
            // and replaying it again is idempotent).
            let wal = WalWriter::create(wal_path(dir, i), rec.meta.epoch, sp.store.stats())?;
            shards.push(ShardFiles {
                upper: rec.meta.upper,
                sp,
                te,
                wal,
                state: Mutex::new(ShardCommitState {
                    epoch: rec.meta.epoch,
                    heap_dir: rec.heap_dir,
                    logged_heap_len: rec.heap_pages.len(),
                }),
                group: StdMutex::new(GroupQueue::default()),
                group_cv: Condvar::new(),
            });
            recovered.push(RecoveredShard {
                meta: rec.meta,
                heap_pages: rec.heap_pages,
            });
        }
        Ok((
            Durability {
                manifest_path,
                mstate: StdMutex::new(ManifestState {
                    manifest,
                    seq: 0,
                    saved: 0,
                    saving: false,
                    failed_through: 0,
                    fail_msg: String::new(),
                }),
                mcv: Condvar::new(),
                shards,
                policy,
                crash: Mutex::new(None),
                sync_delay_micros: std::sync::atomic::AtomicU64::new(0),
                checkpoint_threshold_bytes: std::sync::atomic::AtomicU64::new(
                    DEFAULT_CHECKPOINT_THRESHOLD_BYTES,
                ),
            },
            recovered,
        ))
    }

    /// Number of shards the directory holds.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The fixed record length the manifest records.
    pub(crate) fn record_size(&self) -> usize {
        lock_unpoisoned(&self.mstate).manifest.record_size as usize
    }

    /// The durability policy this deployment runs.
    pub(crate) fn policy(&self) -> DurabilityPolicy {
        self.policy
    }

    /// Arms (or clears) a commit-pipeline fault-injection point.
    pub(crate) fn set_crash_point(&self, point: Option<CommitCrashPoint>) {
        *self.crash.lock() = point;
    }

    /// Sets a simulated per-fsync latency on every shard's pager files,
    /// write-ahead logs and the manifest save (see
    /// [`FilePager::set_sync_delay_micros`]).
    pub(crate) fn set_sync_delay_micros(&self, micros: u64) {
        for shard in &self.shards {
            shard.sp.pager.set_sync_delay_micros(micros);
            shard.te.pager.set_sync_delay_micros(micros);
            shard.wal.set_sync_delay_micros(micros);
        }
        self.sync_delay_micros
            .store(micros, std::sync::atomic::Ordering::Relaxed);
    }

    /// Overrides the log-size threshold past which a commit folds a
    /// checkpoint in — tests and benches force frequent (or suppress all)
    /// threshold checkpoints with it.
    pub(crate) fn set_checkpoint_threshold_bytes(&self, bytes: u64) {
        self.checkpoint_threshold_bytes
            .store(bytes, std::sync::atomic::Ordering::Relaxed);
    }

    fn checkpoint_threshold(&self) -> u64 {
        self.checkpoint_threshold_bytes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The simulated barrier latency applied after a manifest save.
    fn manifest_sync_delay(&self) {
        let micros = self
            .sync_delay_micros
            .load(std::sync::atomic::Ordering::Relaxed);
        if micros > 0 {
            std::thread::sleep(Duration::from_micros(micros));
        }
    }

    fn crash_check(&self, point: CommitCrashPoint) -> StorageResult<()> {
        if *self.crash.lock() == Some(point) {
            return Err(StorageError::Io(std::io::Error::other(format!(
                "injected crash at {point:?}"
            ))));
        }
        Ok(())
    }

    /// Shard `i`'s files. Every shard index handled by the durability layer
    /// comes from the deployment that constructed it, so the bound always
    /// holds; funneling the one slice access through here keeps the commit
    /// paths free of panicking operations everywhere else.
    fn shard(&self, i: usize) -> &ShardFiles {
        // analyzer:allow(panic-free-commit, shard indices come from the owning deployment and are in range by construction)
        &self.shards[i]
    }

    /// Clones shard `i`'s stores so the deployment can build or reopen its
    /// trees on them.
    pub(crate) fn stores(&self, i: usize) -> ShardStores {
        let shard = self.shard(i);
        ShardStores {
            sp_store: Arc::clone(&shard.sp.store),
            sp_cache: Some(Arc::clone(&shard.sp.cache)),
            te_store: Arc::clone(&shard.te.store),
        }
    }

    /// Issues a commit ticket for shard `i`. **Must be called while holding
    /// the shard's write locks** (or with otherwise-exclusive access): the
    /// group-commit protocol relies on "ticket issued under write locks,
    /// commit performed under read locks" to guarantee that a commit covers
    /// every ticket issued before it started.
    // A dropped ticket is never waited on: the write would silently lose its
    // durability guarantee, so losing the return value is always a bug.
    #[must_use]
    pub(crate) fn announce(&self, i: usize) -> u64 {
        let shard = self.shard(i);
        let mut q = lock_unpoisoned(&shard.group);
        q.queued += 1;
        let ticket = q.queued;
        drop(q);
        // Wake a leader that may be gathering its batch.
        shard.group_cv.notify_all();
        ticket
    }

    /// Blocks until a commit covering `ticket` is durable, electing this
    /// caller as the batch leader when no commit is in flight. `commit` must
    /// acquire the shard's read locks and run the prepare/finish pair (or
    /// [`Durability::commit_write`]); it is invoked at most once per
    /// leadership stint.
    ///
    /// Non-`Group` policies skip the queue entirely: every writer runs its
    /// *own* commit — its own log append and its own acknowledgement fsync,
    /// serialized on the shard's commit state. A leader's commit does cover
    /// concurrent writers' already-locked-in mutations (they are in the
    /// appended transaction), but under `Immediate` each writer still pays
    /// its own barrier: that per-write cadence is the policy's contract and
    /// exactly the cost `Group` exists to amortize.
    pub(crate) fn wait_durable(
        &self,
        i: usize,
        ticket: u64,
        commit: impl Fn() -> StorageResult<()>,
    ) -> StorageResult<()> {
        let shard = self.shard(i);
        let (max_batch, max_wait) = match self.policy {
            DurabilityPolicy::Group {
                max_batch,
                max_wait,
            } => (max_batch.max(1) as u64, max_wait),
            _ => return commit(),
        };
        let mut q = lock_unpoisoned(&shard.group);
        loop {
            if q.durable >= ticket {
                return Ok(());
            }
            if q.failed_through >= ticket {
                return Err(batch_error(
                    "group commit failed for this write's batch",
                    &q.fail_msg,
                ));
            }
            if q.leader {
                q = shard.group_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Become the leader: optionally gather a batch, then run ONE
            // commit for everything queued. The group lock is never held
            // while the shard's locks are acquired (the commit closure runs
            // lock-free here), so the lock order stays acyclic.
            q.leader = true;
            if !max_wait.is_zero() {
                let deadline = Instant::now() + max_wait;
                while q.queued.saturating_sub(q.durable) < max_batch {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = shard
                        .group_cv
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    q = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            drop(q);
            // If `commit` panics (tree code, fault injection), leadership
            // must still be released or the shard's writers hang forever.
            let leader_guard = UnwindFlagGuard {
                m: &shard.group,
                cv: &shard.group_cv,
                clear: |q: &mut GroupQueue| q.leader = false,
                armed: true,
            };
            // The commit snapshots how many tickets it covers and publishes
            // the outcome to the queue itself.
            let result = commit();
            leader_guard.disarm();
            q = lock_unpoisoned(&shard.group);
            q.leader = false;
            drop(q);
            shard.group_cv.notify_all();
            // The leader's own ticket predates its commit, so the commit
            // covered it: report our own failure directly (the commit has
            // already marked the batch failed for the followers).
            result?;
            q = lock_unpoisoned(&shard.group);
        }
    }

    /// Commits shard `i`'s current state *and forces a checkpoint*: log
    /// append, page flush, header + manifest republication, log truncation.
    /// The explicit-durability entry point (`flush()`, `close()`, initial
    /// creation). The caller must hold the shard's locks (read locks
    /// suffice — and are what `flush()` holds) so `sp`/`te` cannot change
    /// mid-commit. Covers, and on completion releases or fails, every
    /// group-commit ticket issued before it started.
    pub(crate) fn commit_shard(
        &self,
        i: usize,
        sp: &SaeServiceProvider,
        te: &TrustedEntity,
    ) -> StorageResult<()> {
        let prepared = self.prepare_commit(i, sp, te, true)?;
        self.finish_commit(prepared)
    }

    /// Commits shard `i`'s current state on the write path: log append plus
    /// one log fsync, checkpointing only when the log has grown past the
    /// threshold. What the per-update funnel
    /// (`announce`/`wait_durable`) runs under every policy.
    pub(crate) fn commit_write(
        &self,
        i: usize,
        sp: &SaeServiceProvider,
        te: &TrustedEntity,
    ) -> StorageResult<()> {
        let prepared = self.prepare_commit(i, sp, te, false)?;
        self.finish_commit(prepared)
    }

    /// Publishes a finished (or failed) commit's outcome to the shard's
    /// group queue, releasing or failing every covered ticket.
    fn publish_group_outcome<T>(&self, i: usize, cover: u64, result: &StorageResult<T>) {
        let shard = self.shard(i);
        let mut q = lock_unpoisoned(&shard.group);
        match result {
            Ok(_) => q.durable = q.durable.max(cover),
            Err(e) => {
                if cover > q.durable {
                    q.failed_through = q.failed_through.max(cover);
                    q.fail_msg = e.to_string();
                }
            }
        }
        drop(q);
        shard.group_cv.notify_all();
    }

    /// Commit phase 1, under the shard's (at least read) locks: append the
    /// transaction — `Begin`, every after-image written since the last
    /// commit, the heap page table's new entries, `Commit` with the full
    /// meta — to the shard's log, folding a checkpoint in when the log is
    /// past the threshold (or `force_checkpoint` demands one, as
    /// `flush()`/`close()` do). The returned token holds the shard's
    /// commit-state lock, so no other commit of this shard can start until
    /// [`Durability::finish_commit`] completes — but the *tree* locks can
    /// be released as soon as this returns: the transaction is fully in the
    /// log, so later in-memory mutations (which stay in the cache until
    /// their own commit) cannot leak into it.
    pub(crate) fn prepare_commit<'a>(
        &'a self,
        i: usize,
        sp: &SaeServiceProvider,
        te: &TrustedEntity,
        force_checkpoint: bool,
    ) -> StorageResult<PreparedCommit<'a>> {
        let shard = self.shard(i);
        // The state lock is held from here through finish_commit, including
        // any covering checkpoint and manifest save: if the manifest were
        // written outside it, two concurrent commits of the same shard
        // (e.g. two `flush()` calls, which only take read locks) could
        // invert at the manifest and persist an older epoch after a newer
        // one. Lock order is state(i) → group(i) → wal(i) → manifest,
        // everywhere.
        let mut state = shard.state.lock();
        // Tickets issued before this point were issued under the shard's
        // write locks; our caller holds at least the read locks, so all of
        // those mutations are visible to this commit, which therefore
        // covers them.
        let cover = lock_unpoisoned(&shard.group).queued;
        let epoch = state.epoch + 1;
        let mut already_durable = false;
        let staged = (|| -> StorageResult<ShardMeta> {
            self.crash_check(CommitCrashPoint::BeforeCommit)?;

            // 1. Heap page table through the SP cache, so changed chain
            //    pages join the write set and are logged like any other.
            state
                .heap_dir
                .write(shard.sp.store.as_ref(), sp.heap().pages())?;

            // 2. Collect the transaction: the after-images of everything
            //    written since the last commit, plus the heap page table's
            //    new tail.
            let sp_images = shard.sp.cache.write_set_pages()?;
            let te_images = shard.te.cache.write_set_pages()?;
            let heap_pages = sp.heap().pages();
            let logged = state.logged_heap_len.min(heap_pages.len());
            let new_heap = heap_pages.get(logged..).unwrap_or(&[]);

            let meta = ShardMeta {
                upper: shard.upper,
                epoch,
                sp_index: sp.index().meta(),
                heap_record_count: sp.heap().record_count(),
                heap_page_count: heap_pages.len() as u64,
                heap_dir_head: state.heap_dir.head(),
                te_tree: te.tree().meta(),
                te_digest: *te.tree().total_xor()?.as_bytes(),
            };

            // 3. Log before pages: the whole transaction is appended (not
            //    yet synced) before any page file is touched.
            let mut records =
                Vec::with_capacity(sp_images.len() + te_images.len() + new_heap.len() + 2);
            records.push(WalRecord::Begin { epoch });
            for (page_id, image) in sp_images {
                records.push(WalRecord::PageImage {
                    party: Party::Sp,
                    page_id,
                    image: Box::new(image),
                });
            }
            for (page_id, image) in te_images {
                records.push(WalRecord::PageImage {
                    party: Party::Te,
                    page_id,
                    image: Box::new(image),
                });
            }
            for (offset, page_id) in new_heap.iter().enumerate() {
                records.push(WalRecord::HeapDirEntry {
                    index: (logged + offset) as u64,
                    page_id: *page_id,
                });
            }
            records.push(WalRecord::Commit { meta: meta.clone() });
            shard.wal.append(&records)?;
            // The images are in the log (synced before the ack); the write
            // sets can be forgotten. On an append failure they are *kept*,
            // so a retried commit logs them again.
            shard.sp.cache.clear_write_set();
            shard.te.cache.clear_write_set();
            state.logged_heap_len = heap_pages.len();
            self.crash_check(CommitCrashPoint::AfterPageFlush)?;

            // 4. Checkpoint when the log is due or the caller insists. The
            //    checkpoint runs here — still under the tree locks — so the
            //    cache flush cannot race a concurrent writer's unlogged
            //    mutations into the page files; it opens with the log fsync
            //    and carries its own page barriers, so the finish phase
            //    skips the log fsync.
            if force_checkpoint || shard.wal.log_bytes() >= self.checkpoint_threshold() {
                self.checkpoint_shard(i, &meta)?;
                state.epoch = meta.epoch;
                already_durable = true;
            }
            Ok(meta)
        })();
        if staged.is_err() {
            self.publish_group_outcome(i, cover, &staged);
        }
        let meta = staged?;
        Ok(PreparedCommit {
            shard_idx: i,
            state,
            cover,
            meta,
            already_durable,
        })
    }

    /// Commit phase 2, requiring no tree locks: fsync the log — the single
    /// durability barrier acknowledging the commit (skipped when the
    /// prepare phase's checkpoint already carried its own). Consumes the
    /// token from [`Durability::prepare_commit`] (and with it the
    /// commit-state lock) and releases or fails every covered group ticket.
    pub(crate) fn finish_commit(&self, prepared: PreparedCommit<'_>) -> StorageResult<()> {
        let PreparedCommit {
            shard_idx: i,
            mut state,
            cover,
            meta,
            already_durable,
        } = prepared;
        let shard = self.shard(i);
        let result = (|| -> StorageResult<()> {
            if !already_durable {
                shard.wal.sync()?;
            }
            self.crash_check(CommitCrashPoint::AfterHeaderSync)?;
            state.epoch = meta.epoch;
            Ok(())
        })();
        self.publish_group_outcome(i, cover, &result);
        drop(state);
        result
    }

    /// Folds a checkpoint into a commit (caller holds the shard's
    /// commit-state lock and at least its read tree locks): fsync the log,
    /// flush both caches, republish the headers at the new epoch with a
    /// barrier each, save a covering manifest, then truncate the log to a
    /// fresh segment — strictly in that order, so everything the truncation
    /// drops is already durable elsewhere.
    fn checkpoint_shard(&self, i: usize, meta: &ShardMeta) -> StorageResult<()> {
        let shard = self.shard(i);
        // Log before pages: the caller's just-appended transaction is still
        // unsynced, and the flushes below push its epoch into the page
        // files. Without this barrier a crash mid-checkpoint could durably
        // persist the new pages while the log's recoverable prefix still
        // ends at the previous epoch — losing the committed pre-images.
        // This fsync is also what lets the finish phase skip its own
        // (`already_durable`).
        shard.wal.sync()?;
        shard.sp.flush()?;
        shard.te.flush()?;
        for (files, party) in [(&shard.sp, Party::Sp), (&shard.te, Party::Te)] {
            let header = ShardHeader {
                shard: i as u32,
                party,
                epoch: meta.epoch,
            };
            files.pager.write(SHARD_HEADER_PAGE, &header.encode())?;
            files.sync()?;
        }
        self.publish_manifest(i, meta.clone())?;
        shard.wal.rotate(meta.epoch)?;
        Ok(())
    }

    /// Publishes shard `i`'s new meta into the in-memory manifest and
    /// returns once a manifest image containing it is durably saved — the
    /// checkpoint's manifest leg.
    ///
    /// Under [`DurabilityPolicy::Immediate`] every checkpoint performs its
    /// own save while holding the manifest lock. Under the deferred
    /// policies one saver runs at a time and everyone else piggybacks on
    /// the next covering snapshot: N concurrent shard checkpoints cost one
    /// temp+rename+fsync instead of N.
    fn publish_manifest(&self, i: usize, meta: ShardMeta) -> StorageResult<()> {
        let mut st = lock_unpoisoned(&self.mstate);
        match st.manifest.shards.get_mut(i) {
            Some(slot) => *slot = meta,
            None => {
                return Err(StorageError::Io(std::io::Error::other(format!(
                    "manifest has no slot for shard {i}"
                ))));
            }
        }
        st.seq += 1;
        let my = st.seq;
        if self.policy == DurabilityPolicy::Immediate {
            st.manifest.checkpoint_seq += 1;
            let snapshot = st.manifest.clone();
            let result = snapshot.save(&self.manifest_path);
            if result.is_ok() {
                st.saved = st.saved.max(my);
                self.manifest_sync_delay();
            }
            return result;
        }
        loop {
            if st.saved >= my {
                return Ok(());
            }
            if st.failed_through >= my {
                return Err(batch_error(
                    "manifest save failed for this commit's batch",
                    &st.fail_msg,
                ));
            }
            if st.saving {
                st = self.mcv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.saving = true;
            let target = st.seq;
            st.manifest.checkpoint_seq += 1;
            let snapshot = st.manifest.clone();
            drop(st);
            // If the save panics, the saver flag must still be released or
            // every later committer hangs on the condvar.
            let saver_guard = UnwindFlagGuard {
                m: &self.mstate,
                cv: &self.mcv,
                clear: |st: &mut ManifestState| st.saving = false,
                armed: true,
            };
            let result = snapshot.save(&self.manifest_path);
            if result.is_ok() {
                self.manifest_sync_delay();
            }
            saver_guard.disarm();
            st = lock_unpoisoned(&self.mstate);
            st.saving = false;
            match result {
                Ok(()) => st.saved = st.saved.max(target),
                Err(e) => {
                    if target > st.saved {
                        st.failed_through = st.failed_through.max(target);
                        st.fail_msg = e.to_string();
                    }
                    drop(st);
                    self.mcv.notify_all();
                    // The saver's own update is inside the failed snapshot;
                    // report the original error.
                    return Err(e);
                }
            }
            drop(st);
            self.mcv.notify_all();
            st = lock_unpoisoned(&self.mstate);
        }
    }

    /// The published digest conversion used when reopening a trusted entity.
    pub(crate) fn digest_of(meta: &ShardMeta) -> Digest {
        Digest::new(meta.te_digest)
    }

    /// Shard `i`'s last committed epoch (0 until the first commit).
    pub(crate) fn epoch(&self, i: usize) -> u64 {
        self.shard(i).state.lock().epoch
    }

    /// Exports an epoch-stamped snapshot of shard `i`: the replication
    /// bootstrap a replica installs wholesale. **The caller must hold the
    /// shard's tree locks (read suffices)** so the pages cannot change
    /// underneath the export; the commit-state lock is taken here so no
    /// commit interleaves either.
    ///
    /// The format is a [`crate::replica::SnapshotHeader`] prefix followed by
    /// one synthetic WAL segment — `Seg`, `Begin`, the absolute after-image
    /// of *every* page of both parties, the full heap page table, `Commit`
    /// with the same [`ShardMeta`] a commit of the current state would
    /// publish — so the replica replays it with the exact machinery
    /// (`scan_log`) recovery uses, CRC-checked frame by frame.
    ///
    /// The stamped epoch is the last *committed* epoch: under
    /// [`DurabilityPolicy::FlushOnClose`] the page images may already carry
    /// unacknowledged in-memory mutations ahead of that stamp. The snapshot
    /// is still self-consistent (images, heap table and meta are captured
    /// under the same locks) — freshness is commit-granular, not
    /// mutation-granular.
    pub(crate) fn export_snapshot(
        &self,
        i: usize,
        sp: &SaeServiceProvider,
        te: &TrustedEntity,
    ) -> StorageResult<Vec<u8>> {
        let shard = self.shard(i);
        let state = shard.state.lock();
        let epoch = state.epoch;
        let heap_pages = sp.heap().pages();
        let meta = ShardMeta {
            upper: shard.upper,
            epoch,
            sp_index: sp.index().meta(),
            heap_record_count: sp.heap().record_count(),
            heap_page_count: heap_pages.len() as u64,
            heap_dir_head: state.heap_dir.head(),
            te_tree: te.tree().meta(),
            te_digest: *te.tree().total_xor()?.as_bytes(),
        };
        let mut records = Vec::new();
        records.push(WalRecord::Seg { base_epoch: epoch });
        records.push(WalRecord::Begin { epoch });
        // Absolute images of every page, read through the caches so the
        // content matches the trees being served (dirty pages included).
        for (party, store) in [(Party::Sp, &shard.sp.store), (Party::Te, &shard.te.store)] {
            for id in 0..store.page_count() {
                let page_id = PageId(id);
                records.push(WalRecord::PageImage {
                    party,
                    page_id,
                    image: Box::new(store.read(page_id)?),
                });
            }
        }
        for (index, page_id) in heap_pages.iter().enumerate() {
            records.push(WalRecord::HeapDirEntry {
                index: index as u64,
                page_id: *page_id,
            });
        }
        records.push(WalRecord::Commit { meta });
        let header = crate::replica::SnapshotHeader {
            shard: i as u32,
            record_len: self.record_size() as u32,
            epoch,
        };
        let mut out = header.encode();
        out.extend_from_slice(&sae_storage::encode_records(&records));
        Ok(out)
    }

    /// Exports the WAL tail of shard `i` covering every commit after
    /// `from_epoch`, re-framed as a standalone segment a replica replays
    /// incrementally. [`StorageError::TailUnavailable`] when a checkpoint
    /// has already rotated the needed commits away (the replica must fall
    /// back to [`Durability::export_snapshot`]). Takes only the WAL lock —
    /// safe to call with no tree locks held.
    pub(crate) fn export_wal_tail(&self, i: usize, from_epoch: u64) -> StorageResult<Vec<u8>> {
        let shard = self.shard(i);
        let image = shard.wal.segment_image()?;
        let (seg, txs) = scan_log(&image);
        let Some(seg) = seg else {
            return Err(StorageError::Corrupted(format!(
                "shard {i}: wal segment unreadable while exporting a tail"
            )));
        };
        if seg.base_epoch > from_epoch {
            return Err(StorageError::TailUnavailable {
                base_epoch: seg.base_epoch,
                from_epoch,
            });
        }
        let mut records = vec![WalRecord::Seg {
            base_epoch: from_epoch,
        }];
        for tx in txs {
            if tx.epoch <= from_epoch {
                continue;
            }
            records.push(WalRecord::Begin { epoch: tx.epoch });
            for (party, page_id, image) in tx.pages {
                records.push(WalRecord::PageImage {
                    party,
                    page_id,
                    image: Box::new(image),
                });
            }
            for (index, page_id) in tx.heap_entries {
                records.push(WalRecord::HeapDirEntry { index, page_id });
            }
            records.push(WalRecord::Commit { meta: tx.meta });
        }
        Ok(sae_storage::encode_records(&records))
    }

    /// Best-effort log barrier, swallowing errors — what `Drop` runs. Each
    /// swallowed failure is *recorded* on the shard's SP stats
    /// ([`sae_storage::IoStats::swallowed_sync_errors`]) so tests and
    /// operators can still detect the silent path. Pages and manifest are
    /// deliberately not flushed: everything acknowledged is already covered
    /// by the synced log, and flushing unacknowledged cache contents would
    /// overwrite checkpointed pages with state the log does not describe.
    fn sync_best_effort(&self) {
        for shard in &self.shards {
            if shard.wal.sync().is_err() {
                shard.sp.store.stats().record_swallowed_sync_error();
            }
        }
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        self.sync_best_effort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_file_round_trip_and_identity_checks() {
        let dir = tempfile::tempdir().unwrap();
        let path = sp_path(dir.path(), 0);
        let pager = create_party_file(&path, 0, Party::Sp).unwrap();
        pager.sync().unwrap();
        drop(pager);

        // Reopen with the matching identity and epoch.
        let pager = open_party_file(&path, 0, Party::Sp, 0).unwrap();
        drop(pager);
        // Wrong shard index, wrong party, and a missing file are corruption.
        assert!(matches!(
            open_party_file(&path, 1, Party::Sp, 0),
            Err(StorageError::Corrupted(_))
        ));
        assert!(matches!(
            open_party_file(&path, 0, Party::Te, 0),
            Err(StorageError::Corrupted(_))
        ));
        assert!(matches!(
            open_party_file(&te_path(dir.path(), 0), 0, Party::Te, 0),
            Err(StorageError::Corrupted(_))
        ));
        // A file ahead of the manifest is a stale manifest under the strict
        // (no-log-evidence) validation...
        let pager = Arc::new(FilePager::open(&path).unwrap());
        pager
            .write(
                SHARD_HEADER_PAGE,
                &ShardHeader {
                    shard: 0,
                    party: Party::Sp,
                    epoch: 5,
                }
                .encode(),
            )
            .unwrap();
        drop(pager);
        assert!(matches!(
            open_party_file(&path, 0, Party::Sp, 4),
            Err(StorageError::StaleManifest { .. })
        ));
        // ...while the identity-only form leaves the epoch to log replay.
        let (_pager, header) = open_party_file_identity(&path, 0, Party::Sp).unwrap();
        assert_eq!(header.epoch, 5);
    }

    #[test]
    fn policy_labels_and_defaults() {
        assert_eq!(DurabilityPolicy::default(), DurabilityPolicy::Immediate);
        assert_eq!(DurabilityPolicy::Immediate.label(), "immediate");
        assert_eq!(DurabilityPolicy::group().label(), "group");
        assert_eq!(DurabilityPolicy::FlushOnClose.label(), "flush-on-close");
        match DurabilityPolicy::group() {
            DurabilityPolicy::Group { max_batch, .. } => assert!(max_batch > 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
