//! A concurrent, multi-client serving layer over the SAE and TOM deployments.
//!
//! [`SaeSystem`]/[`TomSystem`] answer one query at a time through `&self`
//! paths; this module turns them into engines that serve many clients at
//! once:
//!
//! * **Partitioned locking.** Under SAE the service provider and the trusted
//!   entity are separate machines, so [`SaeEngine`] puts each party behind its
//!   own `RwLock`: any number of queries share the read locks while data-owner
//!   updates take both write locks (always SP before TE — the single global
//!   lock order) and therefore appear atomic to every reader.
//! * **Thread-pooled drivers.** [`serve_batch`] fans a fixed workload out over
//!   N worker threads; [`serve_mix`] runs a closed loop in which every worker
//!   plays one client replaying its own deterministic
//!   [`QueryMix`] stream. Both aggregate per-thread
//!   [`QueryMetrics`] and wall-clock latencies into a [`ThroughputReport`]
//!   (p50/p95/p99 latency, queries per second).
//! * **Buffer pooling.** [`SaeEngine::build_cached`] wires a
//!   [`CachedPager`] under both parties so hot index pages are served from
//!   memory instead of hitting the backing store on every traversal.
//!
//! ## Cost accounting under concurrency
//!
//! The shared [`IoStats`] counters are atomic, but a *per-query* delta of a
//! shared counter is meaningless while other threads are mid-query — the
//! window would absorb their accesses too. The drivers therefore account node
//! accesses at batch granularity: counters are snapshotted before the workers
//! start and after they all join (both quiescent points), which makes the
//! totals in [`ThroughputReport::party_io`] exact. Per-query fields that are
//! attributable to one thread (cardinality, verification outcome and time)
//! are aggregated per worker as usual.
//!
//! Because the cost model *charges* rather than performs I/O, a batch served
//! purely from memory would overlap nothing; [`ServeOptions::io_micros_per_query`]
//! injects the charged latency as real sleep — outside every lock — so
//! thread-scaling measurements reflect how the engine overlaps I/O stalls,
//! exactly what the paper's 10 ms/node-access model simulates.

use crate::metrics::{LatencySummary, QueryMetrics};
use crate::sae::{
    delete_from_parties, insert_into_parties, SaeClient, SaeServiceProvider, SaeSystem,
    TrustedEntity,
};
use crate::tom::TomSystem;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sae_crypto::signer::{Signer, Verifier};
use sae_crypto::{HashAlgorithm, DIGEST_LEN};
use sae_storage::{
    CachedPager, CostModel, IoSnapshot, IoStats, MemPager, PageStore, SharedPageStore,
    StorageResult,
};
use sae_workload::{Dataset, QueryMix, RangeQuery, Record};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Anything that can execute one authenticated query end to end, safely from
/// many threads at once.
pub trait QueryService: Send + Sync {
    /// Executes one query (SP result, authentication payload, client
    /// verification) and returns its per-query metrics. Node-access and
    /// charged-time fields are zero — under concurrency they are only
    /// attributable at batch granularity (see the module docs).
    fn execute(&self, q: &RangeQuery) -> StorageResult<QueryMetrics>;

    /// The I/O counters of each party's store, labelled. The first entry is
    /// taken as the SP, the second (if any) as the TE when filling the batch
    /// totals of a [`ThroughputReport`].
    fn party_stats(&self) -> Vec<(&'static str, Arc<IoStats>)>;

    /// The cost model used to convert batch node accesses into charged time.
    fn cost_model(&self) -> CostModel {
        CostModel::paper()
    }
}

/// A [`QueryService`] that also accepts data-owner updates, so the mixed
/// read/write driver ([`serve_ops`]) can run against it. Implemented by both
/// the single-pair [`SaeEngine`] and the sharded
/// [`ShardedSaeEngine`](crate::sharded::ShardedSaeEngine), which is exactly
/// what lets one driver path compare their write scaling.
pub trait UpdateService: QueryService {
    /// Applies one insert-then-delete round trip of `record`, atomically with
    /// respect to concurrent queries. `hold` is slept *inside* the write
    /// critical section, simulating the I/O a real write performs while the
    /// affected key range is locked — this is the serialization that sharding
    /// is supposed to break up.
    fn apply_update(&self, record: &Record, hold: Duration) -> StorageResult<()>;
}

/// Options for the concurrent drivers.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Number of worker threads (clients served concurrently). Zero is
    /// clamped to one.
    pub threads: usize,
    /// Simulated per-query I/O latency in microseconds, slept outside all
    /// locks. The cost model only *charges* for node accesses; this turns the
    /// charge into real, overlappable latency so closed-loop throughput
    /// behaves like a deployment that actually waits for its disks and
    /// network. Zero disables the sleep.
    pub io_micros_per_query: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            io_micros_per_query: 0,
        }
    }
}

/// Node accesses one party performed during a batch (exact: snapshotted at
/// quiescent points only).
#[derive(Clone, Copy, Debug)]
pub struct PartyIo {
    /// Which party ("sp", "te").
    pub party: &'static str,
    /// Counter delta over the batch.
    pub delta: IoSnapshot,
}

/// Per-worker view of a batch.
#[derive(Clone, Debug)]
pub struct ThreadReport {
    /// Worker index (0-based).
    pub thread: usize,
    /// Queries this worker served.
    pub queries: u64,
    /// Latency distribution of this worker's queries.
    pub latency: LatencySummary,
}

/// What a concurrent batch run produced.
#[derive(Clone, Debug)]
#[must_use = "a throughput report carries the run's verification verdict, which must be checked"]
pub struct ThroughputReport {
    /// Worker threads used.
    pub threads: usize,
    /// Total queries served.
    pub queries: u64,
    /// Queries that returned a storage error (not counted as verified).
    pub failed: u64,
    /// Whether every served query passed client verification.
    pub all_verified: bool,
    /// Wall-clock duration of the whole batch in milliseconds.
    pub wall_ms: f64,
    /// Aggregate throughput: `queries / wall_ms`, in queries per second.
    pub queries_per_sec: f64,
    /// Merged latency distribution over all workers.
    pub latency: LatencySummary,
    /// Per-worker breakdowns.
    pub per_thread: Vec<ThreadReport>,
    /// Summed per-query metrics; node-access and charged fields are filled
    /// from the exact batch deltas in [`ThroughputReport::party_io`].
    pub totals: QueryMetrics,
    /// Exact per-party node-access deltas for the batch.
    pub party_io: Vec<PartyIo>,
}

struct WorkerOutcome {
    latencies: Vec<f64>,
    totals: QueryMetrics,
    failed: u64,
}

fn run_worker<S: QueryService + ?Sized>(
    service: &S,
    queries: &[RangeQuery],
    io_sleep: Duration,
) -> WorkerOutcome {
    let mut latencies = Vec::with_capacity(queries.len());
    let mut totals = QueryMetrics {
        verified: true,
        ..Default::default()
    };
    let mut failed = 0u64;
    for q in queries {
        let start = Instant::now();
        match service.execute(q) {
            Ok(metrics) => totals.accumulate(&metrics),
            Err(_) => {
                failed += 1;
                totals.verified = false;
            }
        }
        if !io_sleep.is_zero() {
            std::thread::sleep(io_sleep);
        }
        latencies.push(start.elapsed().as_secs_f64() * 1000.0);
    }
    WorkerOutcome {
        latencies,
        totals,
        failed,
    }
}

/// One operation of a mixed read/write client stream (see [`serve_ops`]).
#[derive(Clone, Debug)]
pub enum MixOp {
    /// An authenticated range query, executed through [`QueryService`].
    Query(RangeQuery),
    /// A data-owner write: the record is inserted and then deleted again
    /// through [`UpdateService::apply_update`], so the dataset's cardinality
    /// is unchanged after the batch.
    Update(Record),
}

/// The first `count` operations of `client`'s deterministic mixed stream:
/// each op is a write with probability `write_fraction`, otherwise a query
/// drawn from `mix`. Written records use `record_size`-byte encodings, keys
/// sampled from the mix's placement distribution, and ids disjoint from any
/// dataset generated by [`sae_workload::DatasetSpec`].
pub fn client_ops(
    mix: &QueryMix,
    write_fraction: f64,
    record_size: usize,
    base_seed: u64,
    client: u64,
    count: usize,
) -> Vec<MixOp> {
    let mut coin = StdRng::seed_from_u64(QueryMix::client_seed(base_seed ^ 0x0905, client));
    let mut queries = mix.stream(QueryMix::client_seed(base_seed, client));
    (0..count)
        .map(|i| {
            if coin.gen::<f64>() < write_fraction {
                let key = mix.placement.sample(&mut coin);
                let id = (1u64 << 42) | (client << 24) | i as u64;
                MixOp::Update(Record::with_size(id, key, record_size))
            } else {
                // analyzer:allow(no-unwrap-in-lib, QueryMix::stream is an infinite generator; next() never returns None)
                MixOp::Query(queries.next().expect("query streams are infinite"))
            }
        })
        .collect()
}

fn run_ops_worker<S: UpdateService + ?Sized>(
    service: &S,
    ops: &[MixOp],
    io_sleep: Duration,
) -> WorkerOutcome {
    let mut latencies = Vec::with_capacity(ops.len());
    let mut totals = QueryMetrics {
        verified: true,
        ..Default::default()
    };
    let mut failed = 0u64;
    for op in ops {
        let start = Instant::now();
        match op {
            MixOp::Query(q) => {
                match service.execute(q) {
                    Ok(metrics) => totals.accumulate(&metrics),
                    Err(_) => {
                        failed += 1;
                        totals.verified = false;
                    }
                }
                // Queries pay no simulated latency here: the hot index pages
                // are buffer-pooled, and read I/O overlaps freely anyway. The
                // discriminating resource of a read/write mix is the write
                // hold below.
            }
            MixOp::Update(record) => {
                // Write I/O is *not* overlappable within a key range: the
                // sleep happens inside the write critical section (see
                // UpdateService::apply_update), modelling the durable write
                // a real deployment performs while the key range is locked.
                if service.apply_update(record, io_sleep).is_err() {
                    failed += 1;
                    totals.verified = false;
                }
            }
        }
        latencies.push(start.elapsed().as_secs_f64() * 1000.0);
    }
    WorkerOutcome {
        latencies,
        totals,
        failed,
    }
}

/// The shared concurrent scaffold of every driver: snapshot the party
/// counters at a quiescent point, fan `assignments` out over one scoped
/// thread per entry, join, and aggregate into a [`ThroughputReport`].
fn drive<S, T, F>(service: &S, assignments: Vec<Vec<T>>, worker: F) -> ThroughputReport
where
    S: QueryService + ?Sized,
    T: Send + Sync,
    F: Fn(&S, &[T]) -> WorkerOutcome + Send + Sync,
{
    let threads = assignments.len();
    let before: Vec<(&'static str, IoSnapshot)> = service
        .party_stats()
        .iter()
        .map(|(party, stats)| (*party, stats.snapshot()))
        .collect();

    let start = Instant::now();
    let worker = &worker;
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .iter()
            .map(|chunk| scope.spawn(move || worker(service, chunk)))
            .collect();
        handles
            .into_iter()
            // analyzer:allow(no-unwrap-in-lib, join only fails if a worker panicked; re-raising that panic is the correct propagation)
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;

    let mut totals = QueryMetrics {
        verified: true,
        ..Default::default()
    };
    let mut failed = 0u64;
    let mut all_latencies = Vec::new();
    let mut per_thread = Vec::with_capacity(outcomes.len());
    for (idx, mut outcome) in outcomes.into_iter().enumerate() {
        totals.accumulate(&outcome.totals);
        failed += outcome.failed;
        per_thread.push(ThreadReport {
            thread: idx,
            queries: outcome.latencies.len() as u64,
            latency: LatencySummary::from_samples(&mut outcome.latencies),
        });
        all_latencies.extend(outcome.latencies);
    }

    // Group the per-store deltas by party label: a sharded service reports one
    // "sp"/"te" pair per shard, and the batch totals are the per-party sums.
    let mut party_io: Vec<PartyIo> = Vec::new();
    for ((party, stats), (_, earlier)) in service.party_stats().iter().zip(&before) {
        let delta = stats.snapshot().delta_since(earlier);
        match party_io.iter_mut().find(|p| p.party == *party) {
            Some(p) => p.delta.accumulate(&delta),
            None => party_io.push(PartyIo { party, delta }),
        }
    }
    let cost = service.cost_model();
    if let Some(sp) = party_io.iter().find(|p| p.party == "sp") {
        totals.sp_node_accesses = sp.delta.node_accesses();
        totals.sp_charged_ms = cost.charge_ms(&sp.delta);
    }
    if let Some(te) = party_io.iter().find(|p| p.party == "te") {
        totals.te_node_accesses = te.delta.node_accesses();
        totals.te_charged_ms = cost.charge_ms(&te.delta);
    }

    let queries = all_latencies.len() as u64;
    ThroughputReport {
        threads,
        queries,
        failed,
        all_verified: failed == 0 && totals.verified,
        wall_ms,
        queries_per_sec: if wall_ms > 0.0 {
            queries as f64 * 1000.0 / wall_ms
        } else {
            0.0
        },
        latency: LatencySummary::from_samples(&mut all_latencies),
        per_thread,
        totals,
        party_io,
    }
}

/// Serves a fixed batch of queries over `opts.threads` workers (queries are
/// dealt round-robin) and aggregates the outcome.
pub fn serve_batch<S: QueryService + ?Sized>(
    service: &S,
    queries: &[RangeQuery],
    opts: &ServeOptions,
) -> ThroughputReport {
    let threads = opts.threads.max(1);
    let io_sleep = Duration::from_micros(opts.io_micros_per_query);
    let assignments: Vec<Vec<RangeQuery>> = (0..threads)
        .map(|t| queries.iter().skip(t).step_by(threads).copied().collect())
        .collect();
    drive(service, assignments, |service, chunk| {
        run_worker(service, chunk, io_sleep)
    })
}

/// Closed-loop driver: every worker plays one client that draws
/// `queries_per_client` queries from its own deterministic [`QueryMix`]
/// stream (see [`QueryMix::client_seed`]) and issues them back to back.
pub fn serve_mix<S: QueryService + ?Sized>(
    service: &S,
    mix: &QueryMix,
    queries_per_client: usize,
    seed: u64,
    opts: &ServeOptions,
) -> ThroughputReport {
    let threads = opts.threads.max(1);
    let io_sleep = Duration::from_micros(opts.io_micros_per_query);
    let assignments: Vec<Vec<RangeQuery>> = (0..threads as u64)
        .map(|client| mix.client_queries(seed, client, queries_per_client))
        .collect();
    drive(service, assignments, |service, chunk| {
        run_worker(service, chunk, io_sleep)
    })
}

/// Closed-loop mixed read/write driver: every worker plays one client
/// replaying its own deterministic [`client_ops`] stream — queries through
/// [`QueryService::execute`], writes through [`UpdateService::apply_update`].
/// `ThroughputReport::queries` counts *operations* here, and
/// `opts.io_micros_per_query` is the per-*write* I/O hold, slept inside the
/// write critical section; queries run at memory speed (their I/O is
/// buffer-pooled and overlappable, so it is not what a read/write mix
/// contends on).
pub fn serve_ops<S: UpdateService + ?Sized>(
    service: &S,
    mix: &QueryMix,
    write_fraction: f64,
    record_size: usize,
    ops_per_client: usize,
    seed: u64,
    opts: &ServeOptions,
) -> ThroughputReport {
    let threads = opts.threads.max(1);
    let io_sleep = Duration::from_micros(opts.io_micros_per_query);
    let assignments: Vec<Vec<MixOp>> = (0..threads as u64)
        .map(|client| {
            client_ops(
                mix,
                write_fraction,
                record_size,
                seed,
                client,
                ops_per_client,
            )
        })
        .collect();
    drive(service, assignments, |service, chunk| {
        run_ops_worker(service, chunk, io_sleep)
    })
}

/// The SAE deployment behind independently lockable parties.
///
/// Lock order is **SP before TE** everywhere. Queries hold the SP read lock
/// across the TE read so each query sees one consistent deployment state
/// (updates take both write locks, so a reader that acquired the SP lock
/// first is guaranteed the TE has not advanced past it).
pub struct SaeEngine {
    sp: RwLock<SaeServiceProvider>,
    te: RwLock<TrustedEntity>,
    client: SaeClient,
    cost_model: CostModel,
    sp_stats: Arc<IoStats>,
    te_stats: Arc<IoStats>,
    sp_cache: Option<Arc<CachedPager>>,
    te_cache: Option<Arc<CachedPager>>,
}

impl SaeEngine {
    /// Wraps an existing deployment's parties in locks.
    pub fn from_system(system: SaeSystem) -> SaeEngine {
        let cost_model = system.cost_model();
        let (sp, te, client) = system.into_parts();
        let sp_stats = sp.store().stats();
        let te_stats = te.store().stats();
        SaeEngine {
            sp: RwLock::new(sp),
            te: RwLock::new(te),
            client,
            cost_model,
            sp_stats,
            te_stats,
            sp_cache: None,
            te_cache: None,
        }
    }

    /// Builds a fresh in-memory deployment with a [`CachedPager`] of
    /// `cache_pages` pages wired under **each** party, so hot index pages are
    /// served from the buffer pool.
    pub fn build_cached(
        dataset: &Dataset,
        alg: HashAlgorithm,
        cache_pages: usize,
    ) -> StorageResult<SaeEngine> {
        let sp_cache = Arc::new(CachedPager::new(MemPager::new_shared(), cache_pages));
        let te_cache = Arc::new(CachedPager::new(MemPager::new_shared(), cache_pages));
        let system = SaeSystem::build(
            Arc::clone(&sp_cache) as SharedPageStore,
            Arc::clone(&te_cache) as SharedPageStore,
            dataset,
            alg,
            CostModel::paper(),
            crate::sae::TeMode::XbTree,
        )?;
        let mut engine = SaeEngine::from_system(system);
        engine.sp_cache = Some(sp_cache);
        engine.te_cache = Some(te_cache);
        Ok(engine)
    }

    /// Builds a fresh in-memory deployment without a buffer pool.
    pub fn build_in_memory(dataset: &Dataset, alg: HashAlgorithm) -> StorageResult<SaeEngine> {
        Ok(SaeEngine::from_system(SaeSystem::build_in_memory(
            dataset, alg,
        )?))
    }

    /// Propagates a data-owner insertion to both parties, atomically with
    /// respect to concurrent queries; a TE failure rolls the SP insertion
    /// back so the parties never diverge.
    pub fn insert(&self, record: &Record) -> StorageResult<()> {
        let mut sp = self.sp.write();
        let mut te = self.te.write();
        insert_into_parties(&mut sp, &mut te, record)
    }

    /// Propagates a data-owner deletion to both parties, atomically with
    /// respect to concurrent queries; one-sided deletions are rolled back and
    /// reported as [`sae_storage::StorageError::Desync`].
    pub fn delete(&self, id: u64, key: u32) -> StorageResult<bool> {
        let mut sp = self.sp.write();
        let mut te = self.te.write();
        delete_from_parties(&mut sp, &mut te, id, key)
    }

    /// Buffer-pool counters of the SP, when built with a cache.
    pub fn sp_cache_stats(&self) -> Option<IoSnapshot> {
        self.sp_cache.as_ref().map(|c| c.stats().snapshot())
    }

    /// Buffer-pool counters of the TE, when built with a cache.
    pub fn te_cache_stats(&self) -> Option<IoSnapshot> {
        self.te_cache.as_ref().map(|c| c.stats().snapshot())
    }

    /// Serves a fixed batch (see [`serve_batch`]).
    pub fn serve_batch(&self, queries: &[RangeQuery], opts: &ServeOptions) -> ThroughputReport {
        serve_batch(self, queries, opts)
    }

    /// Runs the closed-loop per-client driver (see [`serve_mix`]).
    pub fn serve_mix(
        &self,
        mix: &QueryMix,
        queries_per_client: usize,
        seed: u64,
        opts: &ServeOptions,
    ) -> ThroughputReport {
        serve_mix(self, mix, queries_per_client, seed, opts)
    }

    /// Runs the closed-loop mixed read/write driver (see [`serve_ops`]).
    pub fn serve_ops(
        &self,
        mix: &QueryMix,
        write_fraction: f64,
        record_size: usize,
        ops_per_client: usize,
        seed: u64,
        opts: &ServeOptions,
    ) -> ThroughputReport {
        serve_ops(
            self,
            mix,
            write_fraction,
            record_size,
            ops_per_client,
            seed,
            opts,
        )
    }
}

impl UpdateService for SaeEngine {
    fn apply_update(&self, record: &Record, hold: Duration) -> StorageResult<()> {
        let mut sp = self.sp.write();
        let mut te = self.te.write();
        crate::sae::update_parties(&mut sp, &mut te, record, hold)
    }
}

impl QueryService for SaeEngine {
    fn execute(&self, q: &RangeQuery) -> StorageResult<QueryMetrics> {
        // SP read lock held across the TE read: see the lock-order note on
        // the struct.
        let sp = self.sp.read();
        let records = sp.query(q)?;
        let vt = self.te.read().generate_vt(q)?;
        drop(sp);
        let (verified, client_ms) = self.client.verify(q, &records, &vt);
        Ok(QueryMetrics {
            result_cardinality: records.len() as u64,
            auth_bytes: DIGEST_LEN as u64,
            client_verify_ms: client_ms,
            verified,
            ..Default::default()
        })
    }

    fn party_stats(&self) -> Vec<(&'static str, Arc<IoStats>)> {
        vec![
            ("sp", Arc::clone(&self.sp_stats)),
            ("te", Arc::clone(&self.te_stats)),
        ]
    }

    fn cost_model(&self) -> CostModel {
        self.cost_model
    }
}

/// The TOM deployment behind one lock (TOM has a single server-side party).
pub struct TomEngine<S: Signer + Send + Sync, V: Verifier + Send + Sync> {
    system: RwLock<TomSystem<S, V>>,
    stats: Arc<IoStats>,
}

impl<S: Signer + Send + Sync, V: Verifier + Send + Sync> TomEngine<S, V> {
    /// Wraps an existing TOM deployment.
    pub fn from_system(system: TomSystem<S, V>) -> TomEngine<S, V> {
        let stats = system.store_stats();
        TomEngine {
            system: RwLock::new(system),
            stats,
        }
    }

    /// Propagates a data-owner insertion (re-signs the root).
    pub fn insert(&self, record: &Record) -> StorageResult<()> {
        self.system.write().insert_record(record)
    }

    /// Propagates a data-owner deletion (re-signs the root).
    pub fn delete(&self, id: u64, key: u32) -> StorageResult<bool> {
        self.system.write().delete_record(id, key)
    }

    /// Serves a fixed batch (see [`serve_batch`]).
    pub fn serve_batch(&self, queries: &[RangeQuery], opts: &ServeOptions) -> ThroughputReport {
        serve_batch(self, queries, opts)
    }

    /// Runs the closed-loop per-client driver (see [`serve_mix`]).
    pub fn serve_mix(
        &self,
        mix: &QueryMix,
        queries_per_client: usize,
        seed: u64,
        opts: &ServeOptions,
    ) -> ThroughputReport {
        serve_mix(self, mix, queries_per_client, seed, opts)
    }
}

impl<S: Signer + Send + Sync, V: Verifier + Send + Sync> QueryService for TomEngine<S, V> {
    fn execute(&self, q: &RangeQuery) -> StorageResult<QueryMetrics> {
        let outcome = self.system.read().query(q)?;
        Ok(QueryMetrics {
            // Zero the delta-derived fields: they were measured against the
            // shared counters and are not attributable under concurrency.
            sp_node_accesses: 0,
            sp_charged_ms: 0.0,
            te_node_accesses: 0,
            te_charged_ms: 0.0,
            ..outcome.metrics
        })
    }

    fn party_stats(&self) -> Vec<(&'static str, Arc<IoStats>)> {
        vec![("sp", Arc::clone(&self.stats))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_crypto::MacSigner;
    use sae_storage::StorageError;
    use sae_workload::{DatasetSpec, KeyDistribution};

    fn dataset(n: usize) -> Dataset {
        DatasetSpec {
            cardinality: n,
            distribution: KeyDistribution::Uniform { domain: 100_000 },
            record_size: 120,
            seed: 5,
        }
        .generate()
    }

    fn opts(threads: usize) -> ServeOptions {
        ServeOptions {
            threads,
            io_micros_per_query: 0,
        }
    }

    #[test]
    fn engines_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SaeEngine>();
        assert_send_sync::<TomEngine<MacSigner, MacSigner>>();
    }

    #[test]
    fn concurrent_batches_verify_and_count_everything() {
        let ds = dataset(4_000);
        let engine = SaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let queries = QueryMix::uniform(100_000, 0.01).workload(64, 3).queries;
        let report = engine.serve_batch(&queries, &opts(4));
        assert_eq!(report.queries, 64);
        assert_eq!(report.failed, 0);
        assert!(report.all_verified);
        assert_eq!(report.threads, 4);
        assert_eq!(report.per_thread.len(), 4);
        assert_eq!(report.per_thread.iter().map(|t| t.queries).sum::<u64>(), 64);
        assert!(report.queries_per_sec > 0.0);
        assert!(report.latency.p50_ms <= report.latency.p99_ms);
        // Batch-level accounting is exact and non-trivial.
        assert_eq!(report.party_io.len(), 2);
        assert!(report.totals.sp_node_accesses > 0);
        assert!(report.totals.te_node_accesses > 0);
        assert!(report.totals.sp_node_accesses > report.totals.te_node_accesses);
        // The result cardinalities match the single-threaded oracle.
        let expected: u64 = queries.iter().map(|q| ds.query_cardinality(q) as u64).sum();
        assert_eq!(report.totals.result_cardinality, expected);
    }

    #[test]
    fn concurrent_results_match_the_sequential_system() {
        let ds = dataset(2_000);
        let system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let engine = SaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        for q in QueryMix::uniform(100_000, 0.02).workload(10, 9).iter() {
            let sequential = system.query(q).unwrap();
            let concurrent = engine.execute(q).unwrap();
            assert!(concurrent.verified);
            assert_eq!(
                concurrent.result_cardinality,
                sequential.metrics.result_cardinality
            );
        }
    }

    #[test]
    fn cached_engine_serves_identical_results_with_buffer_pool_hits() {
        let ds = dataset(3_000);
        let plain = SaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let cached = SaeEngine::build_cached(&ds, HashAlgorithm::Sha1, 256).unwrap();
        let queries = QueryMix::zipf(100_000, 0.01, 0.8).workload(40, 17).queries;

        let a = plain.serve_batch(&queries, &opts(2));
        let b = cached.serve_batch(&queries, &opts(2));
        assert!(a.all_verified && b.all_verified);
        assert_eq!(a.totals.result_cardinality, b.totals.result_cardinality);
        // Logical accounting is preserved by the cache...
        assert_eq!(
            a.totals.sp_node_accesses + a.totals.te_node_accesses,
            b.totals.sp_node_accesses + b.totals.te_node_accesses
        );
        // ...while repeated traversals hit the pool.
        let sp = cached.sp_cache_stats().unwrap();
        assert!(sp.cache_hits > 0, "{sp:?}");
        let te = cached.te_cache_stats().unwrap();
        assert!(te.cache_hits > 0, "{te:?}");
    }

    #[test]
    fn closed_loop_mix_driver_runs_distinct_client_streams() {
        let ds = dataset(2_000);
        let engine = SaeEngine::build_cached(&ds, HashAlgorithm::Sha1, 128).unwrap();
        let mix = QueryMix::uniform(100_000, 0.005);
        let report = engine.serve_mix(&mix, 12, 77, &opts(3));
        assert_eq!(report.queries, 36);
        assert!(report.all_verified);
        // Each client replayed its own stream deterministically.
        let again = engine.serve_mix(&mix, 12, 77, &opts(3));
        assert_eq!(
            report.totals.result_cardinality,
            again.totals.result_cardinality
        );
    }

    #[test]
    fn updates_are_atomic_under_concurrent_queries() {
        let ds = dataset(2_000);
        let engine = Arc::new(SaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        std::thread::scope(|scope| {
            // A writer inserting and deleting fresh records in a loop.
            let writer_engine = Arc::clone(&engine);
            let writer_stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0u64;
                while !writer_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let r = Record::with_size(5_000_000 + i, (i % 100_000) as u32, 120);
                    writer_engine.insert(&r).unwrap();
                    assert!(writer_engine.delete(r.id, r.key).unwrap());
                    i += 1;
                }
            });
            // Readers must see every query verify: a torn update (SP ahead of
            // TE or vice versa) would surface as a verification failure.
            let queries = QueryMix::uniform(100_000, 0.01).workload(120, 41).queries;
            let report = engine.serve_batch(&queries, &opts(3));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            assert_eq!(report.failed, 0);
            assert!(
                report.all_verified,
                "a concurrent update tore a query's view"
            );
        });
    }

    #[test]
    fn engine_delete_reports_desync_like_the_system() {
        let ds = dataset(500);
        let mut system = SaeSystem::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let victim = ds.records[3].clone();
        assert!(system.te_mut().delete(victim.id, victim.key).unwrap());
        let engine = SaeEngine::from_system(system);
        assert!(matches!(
            engine.delete(victim.id, victim.key),
            Err(StorageError::Desync(_))
        ));
        // Rolled back: the record is still served.
        let q = RangeQuery::new(victim.key, victim.key);
        let metrics = engine.execute(&q).unwrap();
        assert!(metrics.result_cardinality >= 1);
    }

    #[test]
    fn tom_engine_serves_concurrent_verified_batches() {
        let ds = dataset(2_000);
        let signer = MacSigner::new(b"do-key".to_vec());
        let system =
            TomSystem::build_in_memory(&ds, HashAlgorithm::Sha1, signer.clone(), signer).unwrap();
        let engine = TomEngine::from_system(system);
        let queries = QueryMix::uniform(100_000, 0.01).workload(32, 13).queries;
        let report = engine.serve_batch(&queries, &opts(4));
        assert_eq!(report.queries, 32);
        assert!(report.all_verified);
        assert_eq!(report.party_io.len(), 1);
        assert!(report.totals.sp_node_accesses > 0);
        // The VO travels with every result.
        assert!(report.totals.auth_bytes > 32 * 20);
    }

    #[test]
    fn simulated_io_latency_is_overlapped_by_threads() {
        let ds = dataset(800);
        let engine = SaeEngine::build_in_memory(&ds, HashAlgorithm::Sha1).unwrap();
        let queries = QueryMix::uniform(100_000, 0.002).workload(48, 23).queries;
        let serve = |threads: usize| {
            engine
                .serve_batch(
                    &queries,
                    &ServeOptions {
                        threads,
                        io_micros_per_query: 1_000,
                    },
                )
                .queries_per_sec
        };
        let one = serve(1);
        let four = serve(4);
        assert!(
            four > 1.5 * one,
            "4-thread qps {four:.0} did not scale over 1-thread qps {one:.0}"
        );
    }
}
