//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Provides the subset of the API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros —
//! with a deliberately simple measurement loop: a short warm-up followed by
//! `sample_size` timed samples, reporting min / mean / max wall-clock time
//! per iteration. No statistics engine, no plots, no baseline files; good
//! enough for eyeballing regressions in an offline environment, and the
//! benches compile unchanged against the real criterion once crates.io is
//! reachable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A group of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Passed to the benchmark closure; collects the timed samples.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` after a short warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up / sanity execution
        self.durations.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        durations: Vec::new(),
    };
    f(&mut bencher);
    if bencher.durations.is_empty() {
        println!("  {label:<50} (no samples recorded)");
        return;
    }
    let min = bencher.durations.iter().min().expect("non-empty");
    let max = bencher.durations.iter().max().expect("non-empty");
    let mean = bencher.durations.iter().sum::<Duration>() / bencher.durations.len() as u32;
    println!(
        "  {label:<50} time: [{} {} {}]",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; the shim has no
            // filtering, so arguments are accepted and ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("counter", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        // 5 samples + 1 warm-up for the first bench.
        assert_eq!(runs, 6);
    }
}
