//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: a JSON [`Value`] tree, a writer (compact and pretty) over the shim
//! serde data model, and a recursive-descent parser.
//!
//! Supported API: [`to_string`], [`to_string_pretty`], [`from_str`] (into
//! [`Value`]), and the usual `Value` accessors (`as_array`, `as_object`,
//! `as_f64`, indexing by key and position, ...).

use std::fmt;

use serde::{Content, Serialize};

/// Error raised by the writer or parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// A JSON number, preserving the integer/float distinction like serde_json.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The value as `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_content(c: &Content, indent: Option<usize>, depth: usize, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(f) => write_f64(*f, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            write_bracketed(items.iter(), '[', ']', indent, depth, out, |item, d, o| {
                write_content(item, indent, d, o);
            });
        }
        Content::Map(entries) => {
            write_bracketed(
                entries.iter(),
                '{',
                '}',
                indent,
                depth,
                out,
                |(k, v), d, o| {
                    write_escaped(k, o);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_content(v, indent, d, o);
                },
            );
        }
    }
}

fn write_bracketed<I, F>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_item(item, depth + 1, out);
    }
    if !empty {
        newline_indent(indent, depth, out);
    }
    out.push(close);
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{}` on f64 prints integral values without a fraction; both forms
        // are valid JSON numbers.
        out.push_str(&f.to_string());
    } else {
        // JSON has no NaN/Infinity; serde_json emits null as well.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a JSON document into a [`Value`].
///
/// Unlike the real `serde_json::from_str`, this shim is not generic: the
/// workspace only ever deserializes into `Value`.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("non-ASCII \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the shim's own
                            // writer (it never escapes above U+001F).
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().expect("non-empty");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        } else if let Ok(n) = text.parse::<u64>() {
            Number::PosInt(n)
        } else if let Ok(n) = text.parse::<i64>() {
            Number::NegInt(n)
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = r#"{"a": [1, -2, 3.5, "x\ny", true, null], "b": {"c": 7}}"#;
        let v = from_str(doc).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["a"][3].as_str(), Some("x\ny"));
        assert_eq!(v["a"][4].as_bool(), Some(true));
        assert!(v["a"][5].is_null());
        assert_eq!(v["b"]["c"].as_u64(), Some(7));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn writer_output_reparses() {
        let value = vec![vec![1u64, 2], vec![3]];
        let compact = to_string(&value).unwrap();
        assert_eq!(compact, "[[1,2],[3]]");
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), from_str(&compact).unwrap());
    }

    #[test]
    fn escapes_survive_round_trip() {
        let text = "quote:\" backslash:\\ newline:\n tab:\t ctrl:\u{1}";
        let json = to_string(&text).unwrap();
        assert_eq!(from_str(&json).unwrap().as_str(), Some(text));
    }
}
