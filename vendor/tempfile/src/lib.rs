//! Offline stand-in for the [`tempfile`](https://crates.io/crates/tempfile)
//! crate: just [`tempdir`] / [`TempDir`], which is all the workspace's tests
//! use.
//!
//! Uniqueness comes from the process id plus a process-wide counter plus a
//! nanosecond timestamp, so concurrently running test binaries cannot
//! collide. The directory and its contents are removed on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};
use std::{env, fs, io};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, deleted (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The path of the directory.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort, like the real crate: ignore races with concurrent
        // deletion or lingering open handles.
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Creates a fresh, uniquely named temporary directory.
pub fn tempdir() -> io::Result<TempDir> {
    // `create_dir` (not `create_dir_all`) so a name collision with a
    // leftover or concurrent directory errors instead of silently sharing
    // it; retry with the next counter value in that case.
    for _ in 0..16 {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let name = format!(
            ".tmp-{}-{}-{nanos}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        );
        let path = env::temp_dir().join(name);
        match fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::new(
        io::ErrorKind::AlreadyExists,
        "tempfile shim: could not find a free temp directory name",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes_on_drop() {
        let dir = tempdir().unwrap();
        let path = dir.path().to_path_buf();
        std::fs::write(path.join("f"), b"x").unwrap();
        assert!(path.is_dir());
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn distinct_names() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
