//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync` primitives.
//!
//! Only the API surface this workspace uses is provided: [`Mutex`] and
//! [`RwLock`] with panic-free (non-poisoning) guards. Lock poisoning is
//! deliberately swallowed — `parking_lot` has no poisoning either, so the
//! semantics match.

use std::fmt;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, never returns a poison error: a panic while holding the
    /// lock does not poison it (matching `parking_lot` semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
