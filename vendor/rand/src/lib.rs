//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this shim provides the
//! (small) subset of the `rand` 0.8 API the workspace actually uses:
//! [`rngs::StdRng`] seeded with [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic,
//! fast and statistically solid for the simulation workloads here. It is
//! **not** the same stream as the real `StdRng` (ChaCha12), which is fine:
//! every consumer in this workspace seeds explicitly and only relies on
//! run-to-run determinism, never on a specific published stream.

/// A source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit multiply-shift.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    (u128::from(rng.next_u64()) * span) >> 64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (only [`StdRng`] is provided).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (only `shuffle` is provided).

    use super::{Rng, RngCore};

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=5u64);
            assert_eq!(w, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }
}
