//! Offline shim for serde's derive macros.
//!
//! `syn`/`quote` are unavailable in this environment, so the derive input is
//! parsed directly from [`proc_macro::TokenTree`]s. The parser understands
//! exactly the shapes this workspace derives on:
//!
//! * structs with named fields, and
//! * enums whose variants are units or have named fields,
//!
//! with no generic parameters. Anything else produces a compile error
//! explaining the limitation. `#[serde(...)]` attributes are not supported
//! and are rejected rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` (renders into `serde::Content`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the shim `serde::Deserialize` (an empty marker impl).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = if serialize {
        render_serialize(&item)
    } else {
        format!("impl serde::Deserialize for {} {{}}", item.name)
    };
    code.parse().expect("derive shim generated invalid Rust")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal")
}

struct Item {
    name: String,
    kind: Kind,
}

/// An enum variant: name plus `None` for unit or `Some(fields)` for named
/// fields.
type Variant = (String, Option<Vec<String>>);

enum Kind {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// The enum's variants.
    Enum(Vec<Variant>),
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility, find `struct` / `enum`.
    let is_enum = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => i += 1,
            None => return Err("serde shim derive: no struct or enum found".into()),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: missing item name".into()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: `{name}` is generic; the offline shim only supports \
                 non-generic items"
            ));
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde shim derive: `{name}` must have a braced body (named-field struct or \
                 enum); tuple and unit structs are not supported"
            ))
        }
    };

    let kind = if is_enum {
        Kind::Enum(parse_variants(body, &name)?)
    } else {
        Kind::Struct(parse_named_fields(body, &name)?)
    };
    Ok(Item { name, kind })
}

/// Parses `ident: Type, ...` out of a named-field body, skipping attributes
/// and visibility, and tracking `<...>` depth so commas inside generic types
/// don't split a field.
fn parse_named_fields(body: TokenStream, context: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    _ => {
                        return Err(format!(
                            "serde shim derive: expected `:` after field `{}` in `{context}`",
                            fields.last().expect("just pushed")
                        ))
                    }
                }
                // Consume the type up to a top-level comma.
                let mut angle_depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1; // past the comma (or end)
            }
            other => {
                return Err(format!(
                    "serde shim derive: unexpected token `{other}` in `{context}` body"
                ))
            }
        }
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream, context: &str) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let variant = id.to_string();
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream(), context)?;
                        variants.push((variant, Some(fields)));
                        i += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        return Err(format!(
                            "serde shim derive: tuple variant `{context}::{variant}` is not \
                             supported; use named fields"
                        ));
                    }
                    _ => variants.push((variant, None)),
                }
            }
            other => {
                return Err(format!(
                    "serde shim derive: unexpected token `{other}` in enum `{context}`"
                ))
            }
        }
    }
    Ok(variants)
}

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), serde::Serialize::to_content(&self.{f}))"))
                .collect();
            format!("serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, fields)| match fields {
                    // Externally tagged, like real serde: unit -> "Variant",
                    // struct variant -> {"Variant": {fields...}}.
                    None => format!(
                        "{name}::{variant} => serde::Content::Str(String::from({variant:?}))"
                    ),
                    Some(fields) => {
                        let binders = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(String::from({f:?}), serde::Serialize::to_content({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{variant} {{ {binders} }} => serde::Content::Map(vec![\
                             (String::from({variant:?}), serde::Content::Map(vec![{}]))])",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_content(&self) -> serde::Content {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
