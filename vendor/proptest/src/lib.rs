//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! Supports the subset the workspace's property tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, [`any`], integer-range strategies,
//! strategy tuples, `prop::collection::vec`, `prop::array::uniform20`,
//! `prop_assert!`-family macros, `prop_assume!` and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports the panic message only;
//! * **fixed deterministic seeding** — each test derives its RNG seed from
//!   its own name, so failures reproduce run to run;
//! * strategies are re-evaluated per case, which is fine for the pure
//!   generator expressions used here.

use std::fmt;

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not failed.
    Reject(String),
    /// A `prop_assert!`-family macro failed.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
            TestCaseError::Fail(msg) => write!(f, "failed: {msg}"),
        }
    }
}

/// Result type the body of a generated test case returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG driving the generators (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; the `proptest!` macro derives the seed from the
    /// test's name so every test has its own reproducible stream.
    pub fn seed_from(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform value in `[0, span)` (128-bit multiply-shift on the top half).
    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span <= u128::from(u64::MAX) {
            (u128::from(self.next_u64()) * span) >> 64
        } else {
            self.next_u128() % span
        }
    }
}

/// A generator of values of type `Value`, mirroring `proptest::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, like `proptest`'s `prop_map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "anything goes" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): plenty for the workloads here.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Rejection-sample the full domain; the starts used in
                // practice are tiny, so this terminates immediately.
                loop {
                    let v = <$t as Arbitrary>::arbitrary(rng);
                    if v >= self.start {
                        return v;
                    }
                }
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u128() % (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeFrom<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        loop {
            let v = rng.next_u128();
            if v >= self.start {
                return v;
            }
        }
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_for_tuples!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
);

/// Strategy combinators namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// An inclusive length range for collection strategies, mirroring
        /// `proptest::collection::SizeRange`. The `From` impls are what let
        /// an untyped literal range like `1..300` infer `usize`.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                Self {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(len: usize) -> Self {
                Self {
                    lo: len,
                    hi_inclusive: len,
                }
            }
        }

        /// Strategy for `Vec`s with a length drawn from a [`SizeRange`].
        pub struct VecStrategy<S> {
            element: S,
            length: SizeRange,
        }

        /// Generates vectors whose length is drawn from `length`, mirroring
        /// `proptest::collection::vec`.
        pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                length: length.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = (self.length.lo..=self.length.hi_inclusive).sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::{Strategy, TestRng};

        /// Strategy for `[S::Value; N]`.
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                core::array::from_fn(|_| self.element.sample(rng))
            }
        }

        /// Generates 20-element arrays, mirroring
        /// `proptest::array::uniform20`.
        pub fn uniform20<S: Strategy>(element: S) -> UniformArray<S, 20> {
            UniformArray { element }
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body without panicking, so the
/// runner can report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case (not a failure), mirroring `prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Each generated `#[test]` runs `config.cases` random cases (default 256)
/// with a deterministic per-test seed. `prop_assume!` rejections are retried
/// up to 20x the case count before the test errors out.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::seed_from(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    if rejected > config.cases.saturating_mul(20) {
                        panic!(
                            "proptest shim: too many prop_assume! rejections ({rejected}) in {}",
                            stringify!($name)
                        );
                    }
                    let case = (|| -> $crate::TestCaseResult {
                        $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match case {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {passed} failed: {msg}");
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..5, z in 1u128..) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
            prop_assert!(z >= 1);
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(any::<u8>(), 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&v));
        }

        #[test]
        fn arrays_and_assume(arr in prop::array::uniform20(any::<u8>()), flip in any::<bool>()) {
            // Rejects about half the cases, exercising the retry path.
            prop_assume!(flip);
            prop_assert_eq!(arr.len(), 20);
            prop_assert_ne!(arr.len(), 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::seed_from("x");
        let mut b = crate::TestRng::seed_from("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::seed_from("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
