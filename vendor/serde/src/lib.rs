//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The real serde models serialization through visitor-based `Serializer` /
//! `Deserializer` traits. This shim collapses that machinery into a single
//! self-describing tree, [`Content`]: [`Serialize`] renders a value into a
//! `Content`, and downstream consumers (the `serde_json` shim) render the
//! tree into their format. That is exactly enough for the workspace, which
//! only derives `Serialize`/`Deserialize` on plain data rows and serializes
//! them to JSON.
//!
//! The derive macros are re-exported from the sibling `serde_derive` shim,
//! so `use serde::{Serialize, Deserialize}` + `#[derive(Serialize,
//! Deserialize)]` works exactly like the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (serde's data model, flattened).
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` / Rust `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (struct fields keep declaration order).
    Map(Vec<(String, Content)>),
}

/// Types renderable into the serde data model.
///
/// The trait method name differs from real serde (`to_content` vs
/// `serialize`), but user code never calls it directly — it only derives the
/// trait and hands values to `serde_json`.
pub trait Serialize {
    /// Renders `self` into a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// Marker trait mirroring `serde::Deserialize`.
///
/// Nothing in the workspace deserializes into user types (only into
/// `serde_json::Value`, which has its own parser), so the shim derive emits
/// an empty impl purely so `#[derive(Deserialize)]` compiles.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}
impl Deserialize for usize {}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_content(&self) -> Content {
        Content::I64(*self as i64)
    }
}
impl Deserialize for isize {}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(1u32.to_content(), Content::U64(1));
        assert_eq!((-1i32).to_content(), Content::I64(-1));
        assert_eq!(1.5f64.to_content(), Content::F64(1.5));
        assert_eq!("x".to_content(), Content::Str("x".into()));
        assert_eq!(
            vec![true, false].to_content(),
            Content::Seq(vec![Content::Bool(true), Content::Bool(false)])
        );
        assert_eq!(Option::<u8>::None.to_content(), Content::Null);
    }
}
